package client

import (
	"testing"
	"time"

	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/types"
)

// fakeEnv is a synchronous sm.ClientEnv capturing effects.
type fakeEnv struct {
	id       types.ClientID
	params   quorum.Params
	sent     []types.Message
	sentTo   []types.ReplicaID
	bcast    []types.Message
	now      time.Duration
	timers   map[sm.TimerID]time.Duration
	canceled []sm.TimerID
}

func newFakeEnv(n int) *fakeEnv {
	p, _ := quorum.NewParams(n)
	return &fakeEnv{id: 1, params: p, timers: make(map[sm.TimerID]time.Duration)}
}

func (f *fakeEnv) Client() types.ClientID { return f.id }
func (f *fakeEnv) Params() quorum.Params  { return f.params }
func (f *fakeEnv) Send(to types.ReplicaID, m types.Message) {
	f.sent = append(f.sent, m)
	f.sentTo = append(f.sentTo, to)
}
func (f *fakeEnv) Broadcast(m types.Message)               { f.bcast = append(f.bcast, m) }
func (f *fakeEnv) SetTimer(id sm.TimerID, d time.Duration) { f.timers[id] = d }
func (f *fakeEnv) CancelTimer(id sm.TimerID) {
	f.canceled = append(f.canceled, id)
	delete(f.timers, id)
}
func (f *fakeEnv) Now() time.Duration  { return f.now }
func (f *fakeEnv) Logf(string, ...any) {}

func tx(seq uint64) types.Transaction {
	return types.Transaction{Client: 1, Seq: seq, Op: []byte{byte(seq)}}
}

func reply(from types.ReplicaID, seq uint64, result types.Digest) *types.ClientReply {
	return &types.ClientReply{Replica: from, Client: 1, Seq: seq, Result: result}
}

func TestCompletesAtFPlusOneMatchingReplies(t *testing.T) {
	env := newFakeEnv(4) // f = 1: needs 2 matching replies
	c := New(Config{Client: 1, Broadcast: true})
	c.Submit(tx(1))
	c.Start(env)
	if len(env.bcast) != 1 {
		t.Fatalf("broadcasts %d, want 1", len(env.bcast))
	}
	d := types.Hash([]byte("result"))
	c.OnMessage(0, reply(0, 1, d))
	if c.Done() {
		t.Fatal("completed with a single reply")
	}
	c.OnMessage(2, reply(2, 1, d))
	if !c.Done() {
		t.Fatal("not complete after f+1 matching replies")
	}
	if got := c.Completions(); len(got) != 1 || got[0].Result != d {
		t.Fatalf("completions %+v", got)
	}
}

func TestMismatchedRepliesDoNotComplete(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Broadcast: true})
	c.Submit(tx(1))
	c.Start(env)
	c.OnMessage(0, reply(0, 1, types.Hash([]byte("a"))))
	c.OnMessage(2, reply(2, 1, types.Hash([]byte("b"))))
	c.OnMessage(3, reply(3, 1, types.Hash([]byte("c"))))
	if c.Done() {
		t.Fatal("completed on divergent replies")
	}
	// A second matching reply for one of the results completes.
	c.OnMessage(1, reply(1, 1, types.Hash([]byte("b"))))
	if !c.Done() {
		t.Fatal("not complete after a matching pair formed")
	}
}

func TestDuplicateRepliesFromSameReplicaDoNotCount(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Broadcast: true})
	c.Submit(tx(1))
	c.Start(env)
	d := types.Hash([]byte("r"))
	c.OnMessage(0, reply(0, 1, d))
	c.OnMessage(0, reply(0, 1, d))
	c.OnMessage(0, reply(0, 1, d))
	if c.Done() {
		t.Fatal("one replica's repeated replies completed the request")
	}
}

func TestRetryEscalatesToBroadcast(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Primary: 0, RetryTimeout: time.Second})
	c.Submit(tx(1))
	c.Start(env)
	if len(env.sent) != 1 || len(env.bcast) != 0 {
		t.Fatalf("initial send went to %d targets, bcast %d", len(env.sent), len(env.bcast))
	}
	// Fire the retransmission timer: escalation broadcasts (§III-E forced
	// execution).
	c.OnTimer(sm.TimerID{Kind: sm.TimerClient, Round: 1})
	if len(env.bcast) != 1 {
		t.Fatal("retry did not escalate to broadcast")
	}
	if c.Retries() != 1 {
		t.Fatalf("retries %d, want 1", c.Retries())
	}
}

func TestPipelineWindow(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Broadcast: true})
	c.SetWindow(2)
	for s := uint64(1); s <= 4; s++ {
		c.Submit(tx(s))
	}
	c.Start(env)
	if len(env.bcast) != 2 {
		t.Fatalf("in flight %d, want window 2", len(env.bcast))
	}
	d := types.Hash([]byte("r"))
	c.OnMessage(0, reply(0, 1, d))
	c.OnMessage(1, reply(1, 1, d))
	if len(env.bcast) != 3 {
		t.Fatalf("completion did not pump the next txn: %d broadcasts", len(env.bcast))
	}
}

func TestLiveSubmission(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Broadcast: true})
	c.Start(env)
	if len(env.bcast) != 0 {
		t.Fatal("sent without submissions")
	}
	c.OnMessage(types.NoReplica, &Submission{Tx: tx(1)})
	if len(env.bcast) != 1 {
		t.Fatal("live submission not pumped")
	}
}

func TestCompletionHook(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Broadcast: true})
	var hooked []Completion
	c.SetCompletionHook(func(comp Completion) { hooked = append(hooked, comp) })
	c.Submit(tx(1))
	c.Start(env)
	d := types.Hash([]byte("r"))
	c.OnMessage(0, reply(0, 1, d))
	c.OnMessage(1, reply(1, 1, d))
	if len(hooked) != 1 || hooked[0].Seq != 1 {
		t.Fatalf("hook saw %+v", hooked)
	}
}

func TestZyzzyvaFastPathNeedsAllN(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Mode: ModeZyzzyva, Broadcast: true})
	c.Submit(tx(1))
	c.Start(env)
	sr := func(from types.ReplicaID) *types.SpecResponse {
		return &types.SpecResponse{Replica: from, View: 0, Round: 1,
			History: types.Hash([]byte("h")), Result: types.Hash([]byte("r")), Client: 1, Count: 1}
	}
	for r := types.ReplicaID(0); r < 3; r++ {
		c.OnMessage(r, sr(r))
	}
	if c.Done() {
		t.Fatal("fast path completed with 3 of 4 responses")
	}
	c.OnMessage(3, sr(3))
	if !c.Done() {
		t.Fatal("fast path did not complete with all n responses")
	}
	if !c.Completions()[0].FastPath {
		t.Fatal("completion not marked fast path")
	}
}

func TestZyzzyvaSlowPathCommitCert(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Mode: ModeZyzzyva, Broadcast: true, RetryTimeout: time.Second})
	c.Submit(tx(1))
	c.Start(env)
	sr := func(from types.ReplicaID) *types.SpecResponse {
		return &types.SpecResponse{Replica: from, View: 0, Round: 1,
			History: types.Hash([]byte("h")), Result: types.Hash([]byte("r")), Client: 1, Count: 1}
	}
	// Only nf = 3 responses arrive (one replica crashed).
	for r := types.ReplicaID(0); r < 3; r++ {
		c.OnMessage(r, sr(r))
	}
	// Timeout: the client must assemble and broadcast a commit cert.
	env.bcast = nil
	c.OnTimer(sm.TimerID{Kind: sm.TimerClient, Round: 1})
	if len(env.bcast) != 1 {
		t.Fatalf("no commit certificate broadcast (%d broadcasts)", len(env.bcast))
	}
	cert, ok := env.bcast[0].(*types.CommitCert)
	if !ok || len(cert.Responses) != 3 {
		t.Fatalf("unexpected broadcast %T %+v", env.bcast[0], env.bcast[0])
	}
	// nf LOCAL-COMMIT acks complete the request.
	for r := types.ReplicaID(0); r < 3; r++ {
		c.OnMessage(r, &types.LocalCommit{Replica: r, View: 0, Round: 1, History: cert.History, Client: 1})
	}
	if !c.Done() {
		t.Fatal("slow path did not complete after nf local commits")
	}
	if c.Completions()[0].FastPath {
		t.Fatal("slow-path completion marked fast")
	}
}

func TestZyzzyvaIgnoresPlainReplies(t *testing.T) {
	env := newFakeEnv(4)
	c := New(Config{Client: 1, Mode: ModeZyzzyva, Broadcast: true})
	c.Submit(tx(1))
	c.Start(env)
	d := types.Hash([]byte("r"))
	c.OnMessage(0, reply(0, 1, d))
	c.OnMessage(1, reply(1, 1, d))
	c.OnMessage(2, reply(2, 1, d))
	if c.Done() {
		t.Fatal("Zyzzyva client completed on execution replies")
	}
}
