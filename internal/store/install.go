package store

// State-transfer install: atomically replace a replica's durable state with
// a snapshot plus ledger suffix fetched (and verified) from peers.
//
// The install is crash-atomic via staging and a commit marker:
//
//  1. The complete new state — a rebased WAL whose first record index is
//     snapshot-height+1 holding the block suffix, and a checkpoint
//     directory holding the base snapshot — is staged under
//     dir/statesync-incoming. A crash here leaves the live dirs untouched;
//     the next Open discards the staging area.
//  2. A commit marker (dir/statesync-commit) is written atomically. The
//     marker is the commit point: before it exists the old state is
//     authoritative, after it exists the staged state is.
//  3. The staged dirs are swapped into place and the marker removed. A
//     crash anywhere in this step is rolled forward by the next Open
//     (finishInstall is idempotent).
//
// A kill -9 at ANY point therefore leaves the data dir openable: either the
// pre-transfer state (uncommitted) or the fully installed one (committed).

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ledger"
	"repro/internal/wal"
)

const (
	incomingDir   = "statesync-incoming"
	commitMarker  = "statesync-commit"
	walDirName    = "wal"
	ckpDirName    = "checkpoints"
	retiredSuffix = ".old"
)

// recoverInstall completes or discards an interrupted install; called by
// Open before anything else touches the directory.
func recoverInstall(dir string) error {
	marker := filepath.Join(dir, commitMarker)
	if _, err := os.Stat(marker); err == nil {
		return finishInstall(dir)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	// No commit marker: the live dirs are authoritative. Clear any staging
	// or cleanup leftovers from an abandoned or almost-finished install.
	if err := os.RemoveAll(filepath.Join(dir, incomingDir)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, name := range []string{walDirName, ckpDirName} {
		if err := os.RemoveAll(filepath.Join(dir, name+retiredSuffix)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// finishInstall swaps the staged dirs into place. Idempotent: every step
// checks what a previous (crashed) attempt already did.
func finishInstall(dir string) error {
	incoming := filepath.Join(dir, incomingDir)
	for _, name := range []string{walDirName, ckpDirName} {
		staged := filepath.Join(incoming, name)
		live := filepath.Join(dir, name)
		retired := live + retiredSuffix
		if _, err := os.Stat(staged); os.IsNotExist(err) {
			continue // already swapped by a previous attempt
		}
		if err := os.RemoveAll(retired); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := os.Stat(live); err == nil {
			if err := os.Rename(live, retired); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		if err := os.Rename(staged, live); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(dir, commitMarker)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	for _, name := range []string{walDirName, ckpDirName} {
		if err := os.RemoveAll(filepath.Join(dir, name+retiredSuffix)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return os.RemoveAll(incoming)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// validateInstall checks the internal consistency of a fetched state before
// any disk mutation: the suffix must chain onto the snapshot and onto
// itself. (The statesync fetcher has already verified the contents against
// the f+1-attested digests; this re-check is the store's own invariant.)
func validateInstall(snap *Snapshot, blocks []*ledger.Block) error {
	if snap == nil {
		return fmt.Errorf("store: install requires a snapshot")
	}
	prev := snap.HeadHash
	for i, blk := range blocks {
		if blk.Height != snap.Height+uint64(i) {
			return fmt.Errorf("store: install block %d has height %d, want %d",
				i, blk.Height, snap.Height+uint64(i))
		}
		if blk.PrevHash != prev {
			return fmt.Errorf("store: install block at height %d breaks the hash chain", blk.Height)
		}
		prev = blk.Hash()
	}
	return nil
}

// InstallState atomically replaces the durable state with snap (the new
// chain base) plus the block suffix at heights [snap.Height,
// snap.Height+len(blocks)). On success the ledger is rebased: Height
// resumes at the end of the suffix, blocks below snap.Height are
// summarized by the snapshot, and the WAL's first record index is
// snap.Height+1. The caller must guarantee no concurrent appends (the
// replica runtime runs installs on its event loop).
//
// On a staging error the previous state is untouched and still open. Once
// the commit marker is written the install only rolls forward; an error
// after that point leaves the store closed and the caller must reopen.
func (d *DurableLedger) InstallState(snap *Snapshot, blocks []*ledger.Block) error {
	if err := validateInstall(snap, blocks); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	// Stage the complete new state. The live dirs and the open log are
	// untouched until the staging is complete and fsynced.
	incoming := filepath.Join(d.dir, incomingDir)
	if err := os.RemoveAll(incoming); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	stagedWAL, err := wal.Open(filepath.Join(incoming, walDirName), wal.Options{
		SegmentBytes: d.opts.SegmentBytes,
		Sync:         d.opts.Sync,
		FirstIndex:   snap.Height + 1,
		Failpoints:   d.opts.Failpoints,
	})
	if err != nil {
		return err
	}
	for _, blk := range blocks {
		if _, err := stagedWAL.AppendNoSync(ledger.EncodeBlock(blk)); err != nil {
			stagedWAL.Close()
			return err
		}
	}
	if err := stagedWAL.Close(); err != nil { // flushes and fsyncs
		return err
	}
	stagedCkp := filepath.Join(incoming, ckpDirName)
	stagedSnaps, err := OpenSnapshots(stagedCkp, d.opts.KeepSnapshots)
	if err != nil {
		return err
	}
	if err := stagedSnaps.Save(snap); err != nil {
		return err
	}
	// Make every staged directory ENTRY durable before the commit marker:
	// the segment file's contents are fsynced by the staged log's Close and
	// the snapshot by writeFileAtomic, but their filenames live in the
	// staged directories — without these fsyncs a crash right after the
	// marker could roll forward to a wal dir whose segment vanished.
	if err := syncDir(filepath.Join(incoming, walDirName)); err != nil {
		return err
	}
	if err := syncDir(stagedCkp); err != nil {
		return err
	}
	if err := syncDir(incoming); err != nil {
		return err
	}

	// Close the live journal before the swap; its files are about to be
	// retired. From here on a failure leaves the store closed but the
	// directory consistent (pre-marker: old state; post-marker: new).
	if d.async != nil {
		d.async.Close()
		d.async = nil
	}
	d.log.Close()

	// Commit point.
	if err := writeFileAtomic(d.dir, filepath.Join(d.dir, commitMarker), []byte("statesync\n")); err != nil {
		return err
	}
	if err := finishInstall(d.dir); err != nil {
		return err
	}

	// Reopen on the installed state.
	log, err := wal.Open(filepath.Join(d.dir, walDirName), wal.Options{
		SegmentBytes: d.opts.SegmentBytes,
		Sync:         d.opts.Sync,
		Failpoints:   d.opts.Failpoints,
	})
	if err != nil {
		return err
	}
	d.log = log
	d.snaps, err = OpenSnapshots(filepath.Join(d.dir, ckpDirName), d.opts.KeepSnapshots)
	if err != nil {
		return err
	}
	d.snaps.Pin(snap.Height)
	mem := ledger.NewAt(snap.Height, snap.HeadHash, snap.TxnCount)
	for _, blk := range blocks {
		got := mem.Append(blk.Batch, blk.Proof, blk.StateHash)
		if got.Hash() != blk.Hash() {
			return fmt.Errorf("store: installed block at height %d rebuilds a different hash", blk.Height)
		}
	}
	d.mem = mem
	d.snap = snap
	if d.opts.Async {
		d.async = log.NewAppender(wal.AsyncOptions{
			QueueDepth:    d.opts.AsyncQueueDepth,
			MaxBatchBytes: d.opts.AsyncMaxBatchBytes,
		})
	}
	return nil
}

// InstallBlocks extends the chain with already-decided blocks fetched from
// peers (the catch-up path of a replica that lagged but was not wiped: no
// snapshot needed, the local prefix is intact). Each block must chain onto
// the current head; everything is journaled under a single fsync. A crash
// mid-call leaves a consistent prefix (the WAL's torn tail is truncated on
// reopen). The caller must guarantee no concurrent appends.
func (d *DurableLedger) InstallBlocks(blocks []*ledger.Block) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, blk := range blocks {
		if blk.Height != d.mem.Height() {
			return fmt.Errorf("store: catch-up block at height %d does not extend the chain (height %d)",
				blk.Height, d.mem.Height())
		}
		prev := d.mem.BaseHash()
		if head := d.mem.Head(); head != nil {
			prev = head.Hash()
		}
		if blk.PrevHash != prev {
			return fmt.Errorf("store: catch-up block at height %d does not chain onto the local head", blk.Height)
		}
		got := d.mem.Append(blk.Batch, blk.Proof, blk.StateHash)
		if got.Hash() != blk.Hash() {
			return fmt.Errorf("store: catch-up block at height %d rebuilds a different hash", blk.Height)
		}
		if _, err := d.log.AppendNoSync(ledger.EncodeBlock(got)); err != nil {
			return err
		}
	}
	return d.log.Sync()
}
