package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// appendBlocksAsync mirrors appendBlocks over the pipelined path and
// returns the set of heights whose completion callback reported durable.
func appendBlocksAsync(t *testing.T, d *DurableLedger, app *ycsb.Store, start, n int) (acked func() map[uint64]bool, wait func()) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[uint64]bool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		batch := &types.Batch{Txns: []types.Transaction{{
			Client: 1, Seq: uint64(start + i + 1),
			Op: ycsb.EncodeWrite(uint32(start+i), []byte(fmt.Sprintf("v%d", start+i))),
		}}}
		for j := range batch.Txns {
			app.Execute(batch.Txns[j])
		}
		proof := ledger.Proof{Round: types.Round(start + i + 1), Digest: batch.Digest(), Signers: []types.ReplicaID{0, 1, 2}}
		wg.Add(1)
		blk := d.AppendAsync(batch, proof, app.StateDigest(), func(h uint64) func(uint64, error) {
			return func(lsn uint64, err error) {
				defer wg.Done()
				if err != nil {
					return
				}
				mu.Lock()
				got[h] = true
				mu.Unlock()
			}
		}(uint64(start+i)))
		if blk.Height != uint64(start+i) {
			t.Fatalf("block landed at height %d, want %d", blk.Height, start+i)
		}
	}
	return func() map[uint64]bool {
			mu.Lock()
			defer mu.Unlock()
			cp := make(map[uint64]bool, len(got))
			for k, v := range got {
				cp[k] = v
			}
			return cp
		}, func() {
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("async completions never arrived")
			}
		}
}

func TestAsyncLedgerAppendsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Async: true, AsyncQueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	acked, wait := appendBlocksAsync(t, d, app, 0, 25)
	wait()
	if got := len(acked()); got != 25 {
		t.Fatalf("%d heights acked, want 25", got)
	}
	// The whole point of the pipeline: far fewer fsyncs than blocks from a
	// single sequential appender.
	if appends, syncs := d.WAL().Stats(); syncs >= appends {
		t.Fatalf("no amortization: %d fsyncs for %d appends", syncs, appends)
	}
	head := d.Memory().Head()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openStore(t, dir)
	if d2.Memory().Height() != 25 {
		t.Fatalf("reopened at height %d, want 25", d2.Memory().Height())
	}
	if d2.Memory().Head().Hash() != head.Hash() {
		t.Fatal("head hash changed across reopen")
	}
	if err := d2.Memory().Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCrashNeverLosesAckedBlocks is the pipelined path's crash
// acceptance test: kill the ledger without a drain and verify the restart
// replays a verified prefix containing every block whose completion fired.
func TestAsyncCrashNeverLosesAckedBlocks(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Async: true, AsyncQueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	acked, _ := appendBlocksAsync(t, d, app, 0, 40)
	// No drain: crash with whatever is still in flight.
	d.CloseAbrupt()
	ok := acked()

	d2 := openStore(t, dir)
	if err := d2.Memory().Verify(); err != nil {
		t.Fatalf("post-crash chain fails audit: %v", err)
	}
	h := d2.Memory().Height()
	for height := range ok {
		if height >= h {
			t.Fatalf("acked height %d lost: restart replays only %d blocks", height, h)
		}
	}
	// The replayed prefix must re-execute to a journaled state digest.
	fresh := ycsb.NewStore(64)
	if _, err := d2.RestoreApp(fresh); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncSnapshotNeverOutrunsJournal takes a checkpoint while blocks are
// still in flight: the checkpoint must only claim heights the journal holds
// durably, so the reopen must accept the pair.
func TestAsyncSnapshotNeverOutrunsJournal(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Async: true, AsyncQueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	_, wait := appendBlocksAsync(t, d, app, 0, 10)
	// Snapshot immediately — in-flight blocks must not invalidate it.
	if err := d.Snapshot(app.Snapshot()); err != nil {
		t.Fatal(err)
	}
	wait()
	d.CloseAbrupt() // even across a crash, checkpoint and journal agree

	d2 := openStore(t, dir)
	if snap := d2.LatestSnapshot(); snap == nil {
		t.Fatal("checkpoint not recovered")
	}
}

func TestAsyncAppendFailureIsStickyToCallbacks(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Async: true})
	if err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	_, wait := appendBlocksAsync(t, d, app, 0, 3)
	wait()
	// Kill the journal out from under the committer — every later append's
	// callback must carry the error, none may claim durability.
	d.WAL().Close()
	errs := make(chan error, 1)
	batch := &types.Batch{Txns: []types.Transaction{{Client: 1, Seq: 99, Op: ycsb.EncodeWrite(1, []byte("x"))}}}
	app.Execute(batch.Txns[0])
	d.AppendAsync(batch, ledger.Proof{Round: 99, Digest: batch.Digest()}, app.StateDigest(), func(lsn uint64, err error) {
		errs <- err
	})
	select {
	case err := <-errs:
		if err == nil {
			t.Fatal("append over a dead journal reported durable")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no completion after journal death")
	}
	d.CloseAbrupt()
}

func TestIdentityStampRefusesForeignDataDir(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-0"})
	if err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 3)
	d.Close()

	// Same replica reopens fine.
	d2, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-0"})
	if err != nil {
		t.Fatalf("same-identity reopen: %v", err)
	}
	d2.Close()

	// A different replica must be refused: this chain is replica-0's
	// voting history, not replica-2's.
	if _, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-2"}); !errors.Is(err, ErrDataDirMismatch) {
		t.Fatalf("foreign-identity reopen: %v, want ErrDataDirMismatch", err)
	}
}

func TestIdentityStampRefusesNewerFormat(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-0"})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	// Forge a stamp from the future.
	forged := fmt.Sprintf("RCCDIR %d\nreplica %s\n", formatVersion+1, "replica-0")
	if err := os.WriteFile(filepath.Join(dir, identityFile), []byte(forged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-0"}); !errors.Is(err, ErrDataDirMismatch) {
		t.Fatalf("newer-format reopen: %v, want ErrDataDirMismatch", err)
	}
}

func TestIdentityStampAdoptedByUnnamedDir(t *testing.T) {
	dir := t.TempDir()
	// First open with no identity (e.g. a direct store test), then a named
	// replica adopts the dir; a different name is then refused.
	d, err := Open(dir, Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-1"})
	if err != nil {
		t.Fatal(err)
	}
	d2.Close()
	if _, err := Open(dir, Options{Sync: wal.SyncNone, Identity: "replica-3"}); !errors.Is(err, ErrDataDirMismatch) {
		t.Fatalf("post-adoption foreign reopen: %v, want ErrDataDirMismatch", err)
	}
}
