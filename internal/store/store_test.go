package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// appendBlocks executes n single-transaction batches against app and
// journals them through d, mirroring what the execution engine does.
func appendBlocks(t *testing.T, d *DurableLedger, app *ycsb.Store, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		batch := &types.Batch{Txns: []types.Transaction{{
			Client: 1, Seq: uint64(start + i + 1),
			Op: ycsb.EncodeWrite(uint32(start+i), []byte(fmt.Sprintf("v%d", start+i))),
		}}}
		for j := range batch.Txns {
			app.Execute(batch.Txns[j])
		}
		proof := ledger.Proof{Round: types.Round(start + i + 1), Digest: batch.Digest(), Signers: []types.ReplicaID{0, 1, 2}}
		if _, err := d.Append(batch, proof, app.StateDigest()); err != nil {
			t.Fatalf("append block %d: %v", start+i, err)
		}
	}
}

func openStore(t *testing.T, dir string) *DurableLedger {
	t.Helper()
	d, err := Open(dir, Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestDurableLedgerReopenResumesChain(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 7)
	head := d.Memory().Head()
	d.Close()

	d2 := openStore(t, dir)
	if d2.Memory().Height() != 7 {
		t.Fatalf("reopened at height %d, want 7", d2.Memory().Height())
	}
	if d2.Memory().Head().Hash() != head.Hash() {
		t.Fatal("head hash changed across reopen")
	}
	if err := d2.Memory().Verify(); err != nil {
		t.Fatalf("replayed chain fails audit: %v", err)
	}
	// The journal keeps accepting blocks after a restart.
	app2 := ycsb.NewStore(64)
	if _, err := d2.RestoreApp(app2); err != nil {
		t.Fatal(err)
	}
	appendBlocks(t, d2, app2, 7, 3)
	if d2.Memory().Height() != 10 {
		t.Fatalf("height %d after post-restart appends, want 10", d2.Memory().Height())
	}
}

func TestRestoreAppRebuildsStateWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 5)
	want := app.StateDigest()
	d.Close()

	d2 := openStore(t, dir)
	fresh := ycsb.NewStore(64)
	txns, err := d2.RestoreApp(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if txns != 5 {
		t.Fatalf("restored %d txns, want 5", txns)
	}
	if fresh.StateDigest() != want {
		t.Fatal("full-replay restore diverged from pre-crash state")
	}
}

func TestRestoreAppResumesFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 4)
	if err := d.Snapshot(app.Snapshot()); err != nil {
		t.Fatal(err)
	}
	appendBlocks(t, d, app, 4, 3)
	want := app.StateDigest()
	d.Close()

	d2 := openStore(t, dir)
	snap := d2.LatestSnapshot()
	if snap == nil || snap.Height != 4 {
		t.Fatalf("snapshot not recovered: %+v", snap)
	}
	fresh := ycsb.NewStore(64)
	if _, err := d2.RestoreApp(fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.StateDigest() != want {
		t.Fatal("snapshot-based restore diverged from pre-crash state")
	}
}

func TestTornWALTailIsDroppedOnReopen(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 6)
	d.Close()

	// Crash mid-append: the last block's record loses its final bytes.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.wal"))
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	d2 := openStore(t, dir)
	if d2.Memory().Height() != 5 {
		t.Fatalf("height %d after torn tail, want 5", d2.Memory().Height())
	}
	if d2.WAL().Truncated() != 1 {
		t.Fatalf("Truncated() = %d, want 1", d2.WAL().Truncated())
	}
	if err := d2.Memory().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBitFlippedWALRecordRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 6)
	d.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.wal"))
	sort.Strings(segs)
	data, _ := os.ReadFile(segs[0])
	// Flip one bit inside block 2's batch payload — mid-segment, with
	// intact records after it, so it can never pass as a torn tail.
	i := bytesIndex(data, "v2")
	if i < 0 {
		t.Fatal("block 2 payload not found")
	}
	data[i] ^= 0x20
	os.WriteFile(segs[0], data, 0o644)

	if _, err := Open(dir, Options{Sync: wal.SyncNone}); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("open over bit-flipped record: %v, want wal.ErrCorrupt", err)
	}
}

func TestSnapshotAheadOfWALRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 3)
	if err := d.Snapshot(app.Snapshot()); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Lose the WAL (e.g. the operator restored the wrong volume): the
	// checkpoint now claims a height the journal never reached.
	if err := os.RemoveAll(filepath.Join(dir, "wal")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: wal.SyncNone}); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("open with snapshot ahead of WAL: %v, want ErrSnapshotMismatch", err)
	}
}

func TestForeignSnapshotRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 3)
	d.Close()

	// Plant a checkpoint from a DIFFERENT chain at a height the WAL does
	// reach: heights agree, hashes must not.
	snaps, err := OpenSnapshots(filepath.Join(dir, "checkpoints"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := snaps.Save(&Snapshot{
		Height:      2,
		HeadHash:    types.Hash([]byte("some other replica's block")),
		StateDigest: types.Hash([]byte("some other replica's state")),
		AppState:    ycsb.NewStore(64).Snapshot(),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Sync: wal.SyncNone}); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("open with foreign snapshot: %v, want ErrSnapshotMismatch", err)
	}
}

func TestSnapshotStoreRetentionAndFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSnapshots(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for h := uint64(1); h <= 5; h++ {
		if err := s.Save(&Snapshot{Height: h, AppState: []byte{byte(h)}}); err != nil {
			t.Fatal(err)
		}
	}
	hs, _ := s.heights()
	if len(hs) != 2 || hs[0] != 4 || hs[1] != 5 {
		t.Fatalf("retention kept %v, want [4 5]", hs)
	}
	// Bitrot in the newest generation: Latest falls back to the older
	// one (the WAL covers the difference).
	data, _ := os.ReadFile(s.path(5))
	data[len(data)-1] ^= 0xff
	os.WriteFile(s.path(5), data, 0o644)
	snap, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || snap.Height != 4 {
		t.Fatalf("latest after bitrot = %+v, want height 4", snap)
	}
}

func bytesIndex(data []byte, marker string) int { return bytes.Index(data, []byte(marker)) }

func TestSnapshotRoundTripsAppState(t *testing.T) {
	app := ycsb.NewStore(32)
	app.Execute(types.Transaction{Client: 1, Seq: 1, Op: ycsb.EncodeWrite(3, []byte("x"))})
	restored := ycsb.NewStore(32)
	if err := restored.Restore(app.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if restored.StateDigest() != app.StateDigest() {
		t.Fatal("ycsb snapshot round trip diverged")
	}
}
