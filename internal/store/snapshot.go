// Package store is the durable storage subsystem: it persists the
// blockchain ledger through a segmented write-ahead log (internal/wal) and
// execution-state checkpoints through an atomic snapshot store, and rebuilds
// both on restart with open-replay-truncate semantics. See doc.go of
// internal/wal for the on-disk log format and crash taxonomy.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

const (
	snapMagicV1 = "RCCCKP1\n"
	snapMagic   = "RCCCKP2\n" // v2 adds the cumulative transaction count
	snapPrefix  = "ckp-"
	snapSuffix  = ".ckp"

	// DefaultKeepSnapshots is how many generations Save retains.
	DefaultKeepSnapshots = 2
)

// Snapshot is one durable execution-state checkpoint: the application state
// bytes at a ledger height, bound to that height's block hash and state
// digest so a restart can prove the snapshot belongs to the journal it sits
// next to.
type Snapshot struct {
	// Height is the ledger height the snapshot was taken at (the number
	// of blocks applied; the covering block is Height-1).
	Height uint64
	// HeadHash is the hash of block Height-1.
	HeadHash types.Digest
	// StateDigest is block Height-1's StateHash — the application's own
	// digest after applying that block.
	StateDigest types.Digest
	// TxnCount is the cumulative number of transactions the chain carries
	// through Height. A replica whose ledger starts at a state-transfer
	// base needs it to resume the executed counter (client replies hash
	// it), since the summarized blocks are no longer there to count.
	// Zero in v1 snapshot files; recomputed from the chain when possible.
	TxnCount uint64
	// AppState is the application's serialized state (Snapshotter).
	AppState []byte
}

// Snapshotter is the optional capability an exec.Application implements to
// participate in checkpoint persistence. Applications without it still
// recover — by re-executing the whole journal instead of resuming from the
// latest checkpoint.
type Snapshotter interface {
	// Snapshot serializes the full application state deterministically.
	Snapshot() []byte
	// Restore replaces the application state with a Snapshot() image.
	Restore(data []byte) error
}

// SnapshotStore persists snapshots as individual files, one per
// checkpoint, written atomically (tmp + fsync + rename).
type SnapshotStore struct {
	dir  string
	keep int
	// pin is a height whose snapshot retention never prunes: the base
	// snapshot of a rebased ledger is the only record of the summarized
	// prefix (its head hash and cumulative transaction count), so it must
	// survive until the next install moves the base. 0 pins nothing (a
	// genesis-rooted chain needs no base snapshot).
	pin uint64
}

// Pin protects the snapshot at height h from retention pruning.
func (s *SnapshotStore) Pin(h uint64) { s.pin = h }

// OpenSnapshots opens (creating if necessary) a snapshot directory. keep
// bounds the retained generations (<=0 selects DefaultKeepSnapshots).
func OpenSnapshots(dir string, keep int) (*SnapshotStore, error) {
	if keep <= 0 {
		keep = DefaultKeepSnapshots
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &SnapshotStore{dir: dir, keep: keep}, nil
}

func (s *SnapshotStore) path(height uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", snapPrefix, height, snapSuffix))
}

func encodeSnapshot(snap *Snapshot) []byte {
	buf := make([]byte, 0, len(snapMagic)+8+32+32+8+4+len(snap.AppState)+4)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, snap.Height)
	buf = append(buf, snap.HeadHash[:]...)
	buf = append(buf, snap.StateDigest[:]...)
	buf = binary.BigEndian.AppendUint64(buf, snap.TxnCount)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snap.AppState)))
	buf = append(buf, snap.AppState...)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func decodeSnapshot(buf []byte) (*Snapshot, error) {
	const fixed = len(snapMagic) + 8 + 32 + 32 + 4 + 4 // v1 floor; v2 adds 8
	if len(buf) < fixed {
		return nil, errors.New("store: snapshot file too short")
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, errors.New("store: snapshot checksum mismatch")
	}
	v2 := string(body[:len(snapMagic)]) == snapMagic
	if !v2 && string(body[:len(snapMagicV1)]) != snapMagicV1 {
		return nil, errors.New("store: snapshot bad magic")
	}
	body = body[len(snapMagic):]
	snap := &Snapshot{Height: binary.BigEndian.Uint64(body)}
	body = body[8:]
	copy(snap.HeadHash[:], body)
	body = body[32:]
	copy(snap.StateDigest[:], body)
	body = body[32:]
	if v2 {
		if len(body) < 8 {
			return nil, errors.New("store: snapshot file too short")
		}
		snap.TxnCount = binary.BigEndian.Uint64(body)
		body = body[8:]
	}
	if len(body) < 4 {
		return nil, errors.New("store: snapshot file too short")
	}
	n := int(binary.BigEndian.Uint32(body))
	body = body[4:]
	if len(body) != n {
		return nil, fmt.Errorf("store: snapshot app state is %d bytes, header says %d", len(body), n)
	}
	if n > 0 {
		snap.AppState = append([]byte(nil), body...)
	}
	return snap, nil
}

// Save persists snap atomically and prunes generations beyond the retention
// bound. A crash at any point leaves either the previous set of snapshots
// or the previous set plus the complete new one — never a torn file under a
// final name.
func (s *SnapshotStore) Save(snap *Snapshot) error {
	if err := writeFileAtomic(s.dir, s.path(snap.Height), encodeSnapshot(snap)); err != nil {
		return err
	}
	return s.prune()
}

// writeFileAtomic writes data under path via tmp + fsync + rename + dir
// sync: a crash at any point leaves either no file or the complete new one
// under the final name, never a torn file. dir must contain path.
func writeFileAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() // make the rename itself durable
		d.Close()
	}
	return nil
}

func (s *SnapshotStore) heights() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var hs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		h, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		hs = append(hs, h)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs, nil
}

func (s *SnapshotStore) prune() error {
	hs, err := s.heights()
	if err != nil {
		return err
	}
	live := 0
	for _, h := range hs {
		if s.pin != 0 && h == s.pin {
			continue
		}
		live++
	}
	for _, h := range hs {
		if live <= s.keep {
			break
		}
		if s.pin != 0 && h == s.pin {
			continue
		}
		if err := os.Remove(s.path(h)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		live--
	}
	return nil
}

// Load reads the snapshot at exactly height h, or (nil, nil) when no
// readable one exists there.
func (s *SnapshotStore) Load(h uint64) (*Snapshot, error) {
	data, err := os.ReadFile(s.path(h))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, nil // unreadable (bitrot): treat as absent
	}
	return snap, nil
}

// Latest returns the newest readable snapshot, or (nil, nil) when none
// exists. Unreadable generations (bitrot) are skipped in favor of older
// ones — the WAL replay covers the gap.
func (s *SnapshotStore) Latest() (*Snapshot, error) {
	hs, err := s.heights()
	if err != nil {
		return nil, err
	}
	for i := len(hs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(s.path(hs[i]))
		if err != nil {
			continue
		}
		snap, err := decodeSnapshot(data)
		if err != nil {
			continue
		}
		return snap, nil
	}
	return nil, nil
}
