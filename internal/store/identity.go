package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// identityFile stamps a data directory with the on-disk format version and
// the identity of the replica that owns it. WAL records and checkpoints
// carry no replica name, so without the stamp a data dir copied (or
// mis-mounted) from another replica would replay cleanly and then diverge
// from the peer set at the first new block — the worst kind of corruption,
// the silent kind.
const identityFile = "IDENTITY"

// formatVersion is the data-dir format this build reads and writes. Older
// versions reopen fine (the format is append-only so far); a NEWER version
// means a newer build already wrote state this one cannot be trusted to
// interpret, so Open refuses.
const formatVersion = 1

// ErrDataDirMismatch reports a data directory that belongs to a different
// replica or was written by a newer format version.
var ErrDataDirMismatch = errors.New("store: data dir mismatch")

// stampIdentity enforces the data dir's identity file: on first open it is
// written (atomically, fsynced); on reopen it must name a format this build
// understands and, when both sides declare one, the same replica identity.
func stampIdentity(dir, identity string) error {
	path := filepath.Join(dir, identityFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return writeIdentity(dir, path, identity)
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	version, owner, err := parseIdentity(data)
	if err != nil {
		return err
	}
	if version > formatVersion {
		return fmt.Errorf("%w: data dir uses format %d, this build reads up to %d",
			ErrDataDirMismatch, version, formatVersion)
	}
	if owner != "" && identity != "" && owner != identity {
		return fmt.Errorf("%w: data dir belongs to %q, this replica is %q",
			ErrDataDirMismatch, owner, identity)
	}
	if owner == "" && identity != "" {
		// A dir stamped before the replica had a name adopts it now.
		return writeIdentity(dir, path, identity)
	}
	return nil
}

func parseIdentity(data []byte) (version int, owner string, err error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "RCCDIR ") {
		return 0, "", fmt.Errorf("%w: unparseable identity file", ErrDataDirMismatch)
	}
	version, err = strconv.Atoi(strings.TrimPrefix(lines[0], "RCCDIR "))
	if err != nil {
		return 0, "", fmt.Errorf("%w: unparseable format version", ErrDataDirMismatch)
	}
	if !strings.HasPrefix(lines[1], "replica ") {
		return 0, "", fmt.Errorf("%w: unparseable identity file", ErrDataDirMismatch)
	}
	return version, strings.TrimPrefix(lines[1], "replica "), nil
}

// writeIdentity stamps atomically so a crash leaves either no stamp or a
// complete one, never a torn file.
func writeIdentity(dir, path, identity string) error {
	return writeFileAtomic(dir, path, fmt.Appendf(nil, "RCCDIR %d\nreplica %s\n", formatVersion, identity))
}
