package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ledger"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// buildSourceState builds a donor store with nblocks blocks and a snapshot
// at snapAt, returning the fetched-over-the-wire shape of a state transfer:
// the base snapshot and the block suffix [snapAt, nblocks).
func buildSourceState(t *testing.T, nblocks, snapAt int) (*Snapshot, []*ledger.Block) {
	t.Helper()
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, snapAt)
	if err := d.Snapshot(app.Snapshot()); err != nil {
		t.Fatal(err)
	}
	appendBlocks(t, d, app, snapAt, nblocks-snapAt)
	snap := d.LatestSnapshot()
	if snap == nil || snap.Height != uint64(snapAt) {
		t.Fatalf("donor snapshot at %v, want height %d", snap, snapAt)
	}
	var blocks []*ledger.Block
	for h := uint64(snapAt); h < d.Memory().Height(); h++ {
		blocks = append(blocks, d.Memory().Get(h))
	}
	return snap, blocks
}

func TestInstallStateRebasesWipedStore(t *testing.T) {
	snap, blocks := buildSourceState(t, 9, 4)

	dir := t.TempDir()
	d := openStore(t, dir) // wiped replica: empty store
	if err := d.InstallState(snap, blocks); err != nil {
		t.Fatalf("install: %v", err)
	}
	if got := d.Memory().Height(); got != 9 {
		t.Fatalf("installed height %d, want 9", got)
	}
	if d.Memory().Base() != 4 {
		t.Fatalf("base %d, want 4", d.Memory().Base())
	}
	if err := d.Memory().Verify(); err != nil {
		t.Fatalf("installed chain fails audit: %v", err)
	}
	// The application restores from the installed snapshot plus suffix.
	app := ycsb.NewStore(64)
	txns, err := d.RestoreApp(app)
	if err != nil {
		t.Fatalf("restore app: %v", err)
	}
	if txns != 9 {
		t.Fatalf("restored txn count %d, want 9", txns)
	}
	if app.StateDigest() != d.Memory().Head().StateHash {
		t.Fatal("restored app digest does not match the installed head")
	}

	// The installed state must survive (and keep extending across) a
	// reopen: the WAL is rebased, the base snapshot pinned.
	appendBlocks(t, d, app, 9, 2)
	d.Close()
	d2 := openStore(t, dir)
	if got := d2.Memory().Height(); got != 11 {
		t.Fatalf("reopened at height %d, want 11", got)
	}
	if d2.Memory().Base() != 4 {
		t.Fatalf("reopened base %d, want 4", d2.Memory().Base())
	}
	if err := d2.Memory().Verify(); err != nil {
		t.Fatalf("reopened chain fails audit: %v", err)
	}
	if got := d2.Memory().TxnCount(); got != 11 {
		t.Fatalf("reopened txn count %d, want 11", got)
	}
}

func TestInstallStateReplacesLaggingPartialStore(t *testing.T) {
	snap, blocks := buildSourceState(t, 9, 6)

	// A replica with SOME history, but less than the snapshot covers: the
	// install replaces its chain wholesale.
	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 3)
	if err := d.InstallState(snap, blocks); err != nil {
		t.Fatalf("install: %v", err)
	}
	if got, base := d.Memory().Height(), d.Memory().Base(); got != 9 || base != 6 {
		t.Fatalf("installed height %d base %d, want 9/6", got, base)
	}
	app2 := ycsb.NewStore(64)
	if _, err := d.RestoreApp(app2); err != nil {
		t.Fatal(err)
	}
	if app2.StateDigest() != d.Memory().Head().StateHash {
		t.Fatal("restored app digest mismatch after replacing partial store")
	}
}

func TestInstallBlocksExtendsChain(t *testing.T) {
	// Donor with 8 blocks; receiver has the first 5 — the lag-behind path
	// fetches only the block range, no snapshot.
	donorDir := t.TempDir()
	donor := openStore(t, donorDir)
	dapp := ycsb.NewStore(64)
	appendBlocks(t, donor, dapp, 0, 8)

	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 5)

	var suffix []*ledger.Block
	for h := uint64(5); h < 8; h++ {
		suffix = append(suffix, donor.Memory().Get(h))
	}
	if err := d.InstallBlocks(suffix); err != nil {
		t.Fatalf("install blocks: %v", err)
	}
	if got := d.Memory().Height(); got != 8 {
		t.Fatalf("height %d, want 8", got)
	}
	if d.Memory().Head().Hash() != donor.Memory().Head().Hash() {
		t.Fatal("catch-up head diverges from donor")
	}
	d.Close()
	d2 := openStore(t, dir)
	if got := d2.Memory().Height(); got != 8 {
		t.Fatalf("reopened height %d, want 8", got)
	}
}

func TestInstallBlocksRefusesWrongHeightOrForeignChain(t *testing.T) {
	donorDir := t.TempDir()
	donor := openStore(t, donorDir)
	dapp := ycsb.NewStore(64)
	appendBlocks(t, donor, dapp, 0, 8)

	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 5)

	// Wrong height: a range that skips a block.
	if err := d.InstallBlocks([]*ledger.Block{donor.Memory().Get(6)}); err == nil {
		t.Fatal("gap in catch-up range accepted")
	}
	// Foreign chain: right height, different history (the donor's block 5
	// does not chain onto THIS replica's block 4 if the prefix differs).
	foreignDir := t.TempDir()
	foreign := openStore(t, foreignDir)
	fapp := ycsb.NewStore(64)
	// Different transactions -> different chain.
	appendBlocks(t, foreign, fapp, 100, 6)
	if err := d.InstallBlocks([]*ledger.Block{foreign.Memory().Get(5)}); err == nil {
		t.Fatal("foreign block accepted into the chain")
	}
	if got := d.Memory().Height(); got != 5 {
		t.Fatalf("failed installs changed the chain: height %d, want 5", got)
	}
}

// TestInstallCrashBeforeCommitKeepsOldState pins the crash-atomicity
// contract on the uncommitted side: a kill after staging but BEFORE the
// commit marker leaves the pre-transfer state authoritative.
func TestInstallCrashBeforeCommitKeepsOldState(t *testing.T) {
	snap, blocks := buildSourceState(t, 9, 4)

	dir := t.TempDir()
	d := openStore(t, dir)
	app := ycsb.NewStore(64)
	appendBlocks(t, d, app, 0, 3)
	oldHead := d.Memory().Head().Hash()
	d.Close()

	// Simulate the crash point: a fully staged incoming dir, no marker.
	incoming := filepath.Join(dir, incomingDir)
	sw, err := wal.Open(filepath.Join(incoming, walDirName), wal.Options{FirstIndex: snap.Height + 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks {
		if _, err := sw.AppendNoSync(ledger.EncodeBlock(blk)); err != nil {
			t.Fatal(err)
		}
	}
	sw.Close()
	ss, err := OpenSnapshots(filepath.Join(incoming, ckpDirName), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.Save(snap); err != nil {
		t.Fatal(err)
	}

	d2 := openStore(t, dir)
	if got := d2.Memory().Height(); got != 3 {
		t.Fatalf("uncommitted install changed the state: height %d, want 3", got)
	}
	if d2.Memory().Head().Hash() != oldHead {
		t.Fatal("uncommitted install changed the head")
	}
	if _, err := os.Stat(incoming); !os.IsNotExist(err) {
		t.Fatal("abandoned staging dir not cleared")
	}
	// The replica can retry the whole transfer from here.
	if err := d2.InstallState(snap, blocks); err != nil {
		t.Fatalf("retry install: %v", err)
	}
	if got := d2.Memory().Height(); got != 9 {
		t.Fatalf("retried install height %d, want 9", got)
	}
}

// TestInstallCrashAfterCommitRollsForward pins the committed side: once the
// marker exists, a crash at any later point (including mid-swap) recovers
// to the fully installed state.
func TestInstallCrashAfterCommitRollsForward(t *testing.T) {
	snap, blocks := buildSourceState(t, 9, 4)

	for _, crashMidSwap := range []bool{false, true} {
		dir := t.TempDir()
		d := openStore(t, dir)
		app := ycsb.NewStore(64)
		appendBlocks(t, d, app, 0, 3)
		d.Close()

		incoming := filepath.Join(dir, incomingDir)
		sw, err := wal.Open(filepath.Join(incoming, walDirName), wal.Options{FirstIndex: snap.Height + 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, blk := range blocks {
			if _, err := sw.AppendNoSync(ledger.EncodeBlock(blk)); err != nil {
				t.Fatal(err)
			}
		}
		sw.Close()
		ss, err := OpenSnapshots(filepath.Join(incoming, ckpDirName), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Save(snap); err != nil {
			t.Fatal(err)
		}
		if err := writeFileAtomic(dir, filepath.Join(dir, commitMarker), []byte("statesync\n")); err != nil {
			t.Fatal(err)
		}
		if crashMidSwap {
			// The crash landed after the WAL was swapped but before the
			// checkpoint dir was: wal moved, checkpoints still staged.
			if err := os.Rename(filepath.Join(dir, walDirName), filepath.Join(dir, walDirName+retiredSuffix)); err != nil {
				t.Fatal(err)
			}
			if err := os.Rename(filepath.Join(incoming, walDirName), filepath.Join(dir, walDirName)); err != nil {
				t.Fatal(err)
			}
		}

		d2 := openStore(t, dir)
		if got := d2.Memory().Height(); got != 9 {
			t.Fatalf("mid-swap=%v: rolled-forward height %d, want 9", crashMidSwap, got)
		}
		if d2.Memory().Base() != 4 {
			t.Fatalf("mid-swap=%v: base %d, want 4", crashMidSwap, d2.Memory().Base())
		}
		if err := d2.Memory().Verify(); err != nil {
			t.Fatalf("mid-swap=%v: %v", crashMidSwap, err)
		}
		app2 := ycsb.NewStore(64)
		if _, err := d2.RestoreApp(app2); err != nil {
			t.Fatalf("mid-swap=%v: restore app: %v", crashMidSwap, err)
		}
		if _, err := os.Stat(filepath.Join(dir, commitMarker)); !os.IsNotExist(err) {
			t.Fatalf("mid-swap=%v: commit marker survived recovery", crashMidSwap)
		}
	}
}

// TestBaseSnapshotPinnedAcrossRetention: later checkpoints must never prune
// the base snapshot — it is the only record of the summarized prefix.
func TestBaseSnapshotPinnedAcrossRetention(t *testing.T) {
	snap, blocks := buildSourceState(t, 6, 4)

	dir := t.TempDir()
	d := openStore(t, dir)
	if err := d.InstallState(snap, blocks); err != nil {
		t.Fatal(err)
	}
	app := ycsb.NewStore(64)
	if _, err := d.RestoreApp(app); err != nil {
		t.Fatal(err)
	}
	// Take several newer checkpoints; retention (default 2) would prune
	// the base without the pin.
	for i := 0; i < 4; i++ {
		appendBlocks(t, d, app, 6+i, 1)
		if err := d.Snapshot(app.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	d2 := openStore(t, dir)
	if got := d2.Memory().Height(); got != 10 {
		t.Fatalf("reopened height %d, want 10", got)
	}
	if d2.Memory().Base() != 4 {
		t.Fatalf("reopened base %d, want 4", d2.Memory().Base())
	}
	if err := d2.Memory().Verify(); err != nil {
		t.Fatal(err)
	}
}
