package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/ledger"
	"repro/internal/types"
	"repro/internal/wal"
)

// ErrSnapshotMismatch reports a checkpoint that disagrees with the journal
// it sits next to: it claims a height the WAL never reached, or state the
// chain never produced. Either the data directory was assembled from two
// different replicas or the storage lied; recovery must not guess.
var ErrSnapshotMismatch = errors.New("store: snapshot disagrees with replayed WAL")

// Options parameterizes a DurableLedger.
type Options struct {
	// SegmentBytes is the WAL roll threshold (default wal.DefaultSegmentBytes).
	SegmentBytes int64
	// Sync is the WAL durability policy (default group commit).
	Sync wal.SyncPolicy
	// KeepSnapshots bounds retained checkpoint generations (default 2).
	KeepSnapshots int
	// Async enables the pipelined commit path: AppendAsync hands records
	// to a background committer that batches many blocks per fsync and
	// reports durability through completion callbacks, instead of every
	// append stopping to wait out its own fsync.
	Async bool
	// AsyncQueueDepth bounds blocks in flight (appended, not yet durable)
	// in async mode; appends block when it fills (back-pressure). Default
	// wal.DefaultQueueDepth.
	AsyncQueueDepth int
	// AsyncMaxBatchBytes caps the bytes one fsync covers in async mode
	// (default wal.DefaultMaxBatchBytes).
	AsyncMaxBatchBytes int64
	// AsyncOnCommit, when set, observes every successful async commit
	// point (records and bytes covered, commit-point duration) — the
	// metrics hook. It runs on the committer goroutine; keep it fast.
	AsyncOnCommit func(records int, bytes int64, took time.Duration)
	// Identity names the replica owning the data dir. On first open it is
	// stamped into the dir; a reopen under a different identity fails with
	// ErrDataDirMismatch (a data dir is not portable across replicas —
	// its chain is this replica's voting history). Empty skips the
	// ownership check but still stamps and checks the format version.
	Identity string
	// PruneWAL reclaims WAL segments below each persisted checkpoint: every
	// Snapshot(H) rolls the active segment and prunes the records the
	// checkpoint summarizes, leaving the log rebased to exactly H (the same
	// invariant a state-transfer install establishes). Long-running replicas
	// need it to keep disk usage proportional to the checkpoint interval
	// instead of the chain length.
	PruneWAL bool
	// Failpoints, when non-nil, injects disk faults into the WAL (see
	// wal.Failpoints). Chaos/test wiring only.
	Failpoints *wal.Failpoints
}

// DurableLedger wraps the in-memory hash-chained ledger with durability:
// every appended block is journaled through the write-ahead log, and Open
// rebuilds the chain from disk — replaying the WAL, truncating a torn tail,
// re-auditing the rebuilt chain (ledger.Verify, including commit-proof
// digests), and cross-checking the latest snapshot against it.
type DurableLedger struct {
	dir  string
	opts Options

	mu    sync.Mutex
	mem   *ledger.Ledger
	log   *wal.Log
	async *wal.Appender // pipelined commit path, nil in sync mode
	snaps *SnapshotStore
	snap  *Snapshot // latest consistent checkpoint found at Open, may be nil
}

// Open opens (creating if necessary) the durable ledger rooted at dir. The
// WAL lives in dir/wal, checkpoints in dir/checkpoints, and the dir itself
// is stamped with the replica identity and format version (first open
// stamps, later opens enforce — see ErrDataDirMismatch).
func Open(dir string, opts Options) (*DurableLedger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := stampIdentity(dir, opts.Identity); err != nil {
		return nil, err
	}
	// A crash may have interrupted a state-transfer install: a committed
	// install (marker present) rolls forward to the new state, an
	// uncommitted one is discarded — never a half-installed mix.
	if err := recoverInstall(dir); err != nil {
		return nil, err
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		Failpoints:   opts.Failpoints,
	})
	if err != nil {
		return nil, err
	}
	d := &DurableLedger{dir: dir, opts: opts, log: log}
	if d.snaps, err = OpenSnapshots(filepath.Join(dir, "checkpoints"), opts.KeepSnapshots); err != nil {
		log.Close()
		return nil, err
	}
	// A journal whose first record index is past 1 was rebased by a
	// state-transfer install: blocks below the base live only in the base
	// snapshot, which anchors the chain's hash links and transaction count.
	if base := log.Base() - 1; base > 0 {
		d.snaps.Pin(base)
		bs, err := d.snaps.Load(base)
		if err != nil {
			log.Close()
			return nil, err
		}
		if bs == nil {
			log.Close()
			return nil, fmt.Errorf("%w: journal is rebased to height %d but the base checkpoint is missing",
				ErrSnapshotMismatch, base)
		}
		d.mem = ledger.NewAt(base, bs.HeadHash, bs.TxnCount)
	} else {
		d.mem = ledger.New()
	}
	if err := d.replay(); err != nil {
		log.Close()
		return nil, err
	}
	snap, err := d.snaps.Latest()
	if err != nil {
		log.Close()
		return nil, err
	}
	if snap != nil {
		if err := d.checkSnapshot(snap); err != nil {
			log.Close()
			return nil, err
		}
		// v1 snapshot files carried no transaction count; rebuild it from
		// the replayed chain so state-transfer offers stay accurate.
		if snap.TxnCount == 0 && snap.Height > 0 && d.mem.Base() == 0 {
			for h := uint64(0); h < snap.Height; h++ {
				snap.TxnCount += uint64(d.mem.Get(h).Batch.Len())
			}
		}
		d.snap = snap
	}
	if opts.Async {
		d.async = log.NewAppender(wal.AsyncOptions{
			QueueDepth:    opts.AsyncQueueDepth,
			MaxBatchBytes: opts.AsyncMaxBatchBytes,
			OnCommit:      opts.AsyncOnCommit,
		})
	}
	return d, nil
}

// replay rebuilds the in-memory chain from the WAL and re-audits it.
func (d *DurableLedger) replay() error {
	if err := d.log.Replay(func(idx uint64, payload []byte) error {
		blk, err := ledger.DecodeBlock(payload)
		if err != nil {
			return fmt.Errorf("store: wal record %d: %w", idx, err)
		}
		got := d.mem.Append(blk.Batch, blk.Proof, blk.StateHash)
		// The rebuilt block must land at the journaled height with the
		// journaled hash — anything else means records were reordered
		// or the chain prefix differs from what this block was chained
		// onto before the crash.
		if got.Height != blk.Height || got.Hash() != blk.Hash() {
			return fmt.Errorf("store: wal record %d rebuilds height %d (hash %v), journal says height %d (hash %v)",
				idx, got.Height, got.Hash(), blk.Height, blk.Hash())
		}
		return nil
	}); err != nil {
		return err
	}
	return d.mem.Verify()
}

// checkSnapshot cross-checks a checkpoint against the replayed chain.
func (d *DurableLedger) checkSnapshot(snap *Snapshot) error {
	if snap.Height > d.mem.Height() {
		return fmt.Errorf("%w: checkpoint at height %d but WAL replays only %d blocks",
			ErrSnapshotMismatch, snap.Height, d.mem.Height())
	}
	if snap.Height == 0 {
		return nil
	}
	if snap.Height == d.mem.Base() {
		// The base snapshot IS the chain's anchor below the rebased
		// journal: block Height-1 is summarized, not materialized, and the
		// ledger was constructed from this snapshot's head hash.
		if snap.HeadHash != d.mem.BaseHash() {
			return fmt.Errorf("%w: base checkpoint at height %d does not anchor the rebased chain",
				ErrSnapshotMismatch, snap.Height)
		}
		return nil
	}
	if snap.Height < d.mem.Base() {
		return fmt.Errorf("%w: checkpoint at height %d is below the rebased journal (base %d)",
			ErrSnapshotMismatch, snap.Height, d.mem.Base())
	}
	blk := d.mem.Get(snap.Height - 1)
	if blk.Hash() != snap.HeadHash || blk.StateHash != snap.StateDigest {
		return fmt.Errorf("%w: checkpoint at height %d does not match the journaled block",
			ErrSnapshotMismatch, snap.Height)
	}
	return nil
}

// Memory returns the in-memory ledger view (reads: Height, Get, Head,
// Verify). Mutate only through DurableLedger.Append. A state-transfer
// install replaces the ledger object: long-lived readers should re-fetch
// rather than cache the pointer.
func (d *DurableLedger) Memory() *ledger.Ledger {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.mem
}

// LatestSnapshot returns the newest validated checkpoint, or nil.
func (d *DurableLedger) LatestSnapshot() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snap
}

// Append journals the block in the WAL and appends it to the in-memory
// chain. It returns once the record is durable under the log's sync policy.
// The lock spans both appends so WAL record order always equals chain
// order, whatever goroutine calls here (the WAL itself still group-commits
// across logs). An error is fatal for the replica: the in-memory chain may
// then be ahead of disk, so the caller must stop journaling rather than
// continue with a silent durability gap.
func (d *DurableLedger) Append(batch *types.Batch, proof ledger.Proof, state types.Digest) (*ledger.Block, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	blk := d.mem.Append(batch, proof, state)
	if _, err := d.log.Append(ledger.EncodeBlock(blk)); err != nil {
		return blk, err
	}
	return blk, nil
}

// AppendAsync is the pipelined commit path: the block joins the in-memory
// chain and is handed to the background committer without waiting for the
// disk. done fires exactly once — from the committer, carrying the durable
// LSN, once a commit point covers the record; inline with the sticky error
// when the journal has already failed (the block is then ahead of disk and
// the caller must stop journaling, same contract as Append). done runs on
// the committer goroutine: keep it short and do not call back into the
// ledger from it. AppendAsync blocks while AsyncQueueDepth blocks are in
// flight. On a sync-mode ledger it degenerates to Append with an inline
// done.
func (d *DurableLedger) AppendAsync(batch *types.Batch, proof ledger.Proof, state types.Digest, done func(lsn uint64, err error)) *ledger.Block {
	d.mu.Lock()
	defer d.mu.Unlock()
	blk := d.mem.Append(batch, proof, state)
	payload := ledger.EncodeBlock(blk)
	if d.async == nil {
		idx, err := d.log.Append(payload)
		done(idx, err)
		return blk
	}
	if _, err := d.async.Submit(payload, done); err != nil {
		done(0, err) // Submit never ran the callback; fail it here
	}
	return blk
}

// Snapshot persists appState as a checkpoint at the current chain head
// (§III-D durable counterpart of RCC's dynamic checkpoints). It is a no-op
// on an empty chain. The WAL is synced first so a durable checkpoint is
// never ahead of the durable journal — otherwise a crash under
// wal.SyncNone (buffered journal, fsynced checkpoint) would leave a data
// dir that can never reopen.
func (d *DurableLedger) Snapshot(appState []byte) error {
	d.mu.Lock()
	head := d.mem.Head()
	txns := d.mem.TxnCount()
	d.mu.Unlock()
	if head == nil {
		return nil
	}
	if err := d.log.Sync(); err != nil {
		return err
	}
	snap := &Snapshot{
		Height:      head.Height + 1,
		HeadHash:    head.Hash(),
		StateDigest: head.StateHash,
		TxnCount:    txns,
		AppState:    appState,
	}
	if err := d.snaps.Save(snap); err != nil {
		return err
	}
	d.mu.Lock()
	d.snap = snap
	d.mu.Unlock()
	if d.opts.PruneWAL {
		d.pruneWAL(snap.Height)
	}
	return nil
}

// pruneWAL reclaims the records checkpoint height h summarizes: roll the
// active segment so a boundary lands exactly after record h (block h-1),
// then drop every whole segment below it. When the prune lands the base at
// exactly h (it always does unless an append slipped between the head read
// and the roll), the checkpoint is pinned so retention can never delete the
// only record of the summarized prefix — the invariant Open's rebase path
// checks. A prune that cannot advance the base is skipped silently: it is a
// space optimization, never a correctness requirement.
func (d *DurableLedger) pruneWAL(h uint64) {
	if err := d.log.Roll(); err != nil {
		return
	}
	if err := d.log.Prune(h + 1); err != nil {
		return
	}
	if d.log.Base()-1 == h {
		d.mu.Lock()
		d.snaps.Pin(h)
		d.mu.Unlock()
	}
}

// RestoreApp brings app to the chain head's state: from the latest
// consistent checkpoint when app implements Snapshotter (re-executing only
// the blocks after it), otherwise by re-executing the whole journal. It
// verifies the final application digest against the head block's StateHash
// and returns the total number of transactions the chain carries (for
// priming executed-transaction counters).
func (d *DurableLedger) RestoreApp(app exec.Application) (uint64, error) {
	var from uint64
	if _, ok := app.(Snapshotter); !ok && d.mem.Base() > 0 {
		// The blocks below the base exist only inside the base snapshot's
		// application state; an application that cannot restore snapshots
		// cannot be rebuilt from a rebased journal.
		return 0, fmt.Errorf("%w: journal is rebased to height %d but the application does not restore snapshots",
			ErrSnapshotMismatch, d.mem.Base())
	}
	if snapper, ok := app.(Snapshotter); ok && d.snap != nil {
		if err := snapper.Restore(d.snap.AppState); err != nil {
			return 0, fmt.Errorf("store: restoring checkpoint at height %d: %w", d.snap.Height, err)
		}
		if app.StateDigest() != d.snap.StateDigest {
			return 0, fmt.Errorf("%w: restored application digest differs at height %d",
				ErrSnapshotMismatch, d.snap.Height)
		}
		from = d.snap.Height
	}
	for h := from; h < d.mem.Height(); h++ {
		blk := d.mem.Get(h)
		for i := range blk.Batch.Txns {
			app.Execute(blk.Batch.Txns[i])
		}
		if app.StateDigest() != blk.StateHash {
			return 0, fmt.Errorf("store: replay diverged at height %d: application digest does not match the journaled StateHash", h)
		}
	}
	return d.mem.TxnCount(), nil
}

// Sync forces all journaled blocks to durable storage. In async mode the
// blocks are already in the log's buffer (AppendAsync writes before it
// returns), so this also covers every block still awaiting its completion
// callback — which the committer will still deliver.
func (d *DurableLedger) Sync() error { return d.log.Sync() }

// WAL exposes the underlying log (stats, pruning, tests).
func (d *DurableLedger) WAL() *wal.Log { return d.log }

// Appender exposes the async committer (stats, tests); nil in sync mode.
func (d *DurableLedger) Appender() *wal.Appender { return d.async }

// Close drains the async committer — every in-flight block gets its commit
// point and its completion callback before Close returns — then flushes and
// closes the journal.
func (d *DurableLedger) Close() error {
	if d.async != nil {
		err := d.async.Close()
		cerr := d.log.Close()
		if err != nil && !errors.Is(err, wal.ErrClosed) {
			return err
		}
		return cerr
	}
	return d.log.Close()
}

// CloseAbrupt closes the ledger the way a crash would: in-flight async
// blocks get no commit point and no callbacks, and the log's write buffer
// is discarded. Crash-realism test helper.
func (d *DurableLedger) CloseAbrupt() {
	if d.async != nil {
		d.async.CloseAbrupt()
	}
	d.log.CloseAbrupt()
}
