package chaos

// Post-run verification and failure artifacts. The invariants, in the
// order they are checked:
//
//  1. Reconvergence: with every fault healed and every node restarted,
//     all replicas reach one height with one head hash and one execution
//     state digest. Convergence is what makes the remaining checks sound —
//     identical heads over a collision-resistant hash chain mean identical
//     logical chains.
//  2. The converged head matches the chain the monitor accumulated, tying
//     the live observations to the final state.
//  3. Zero acked-transaction loss: every transaction a client accepted
//     (f+1 matching replies) appears on the chain.
//  4. No duplicate commits: no (client, seq) appears at two heights.
//  5. No mid-run block conflicts (recorded by the monitor as they happen).
//
// A failed run leaves every incarnation's flight ring and the merged
// cluster timeline (with detected anomalies) in Config.ArtifactDir.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/types"
)

// convSample is one node's head observation.
type convSample struct {
	height uint64
	head   types.Digest
	state  types.Digest
	synced bool
}

// sampleHeads reads every node's head; ok is false unless all nodes run.
func sampleHeads(c *Cluster) (out []convSample, ok bool) {
	for _, n := range c.nodes {
		n.mu.Lock()
		if !n.up {
			n.mu.Unlock()
			return nil, false
		}
		s := convSample{
			height: n.rep.Ledger().Height(),
			head:   n.rep.Ledger().HeadHash(),
			state:  n.rep.StateDigest(),
		}
		if sy := n.rep.StateSync(); sy != nil {
			s.synced = sy.Synced()
		}
		n.mu.Unlock()
		out = append(out, s)
	}
	return out, true
}

// waitConverged polls until every node reports the same height, head hash,
// and state digest, filling rep.Height/HeadHash on success.
func waitConverged(c *Cluster, rep *Report, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if s, ok := sampleHeads(c); ok && len(s) > 0 {
			agree := true
			for _, x := range s[1:] {
				if x.height != s[0].height || x.head != s[0].head || x.state != s[0].state {
					agree = false
					break
				}
			}
			if agree {
				rep.Height = s[0].height
				rep.HeadHash = s[0].head
				return true
			}
		}
		time.Sleep(150 * time.Millisecond)
	}
	return false
}

// chainLen returns how many heights the monitor observed committed.
func (m *monitor) chainLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.chain)
}

// hashAt returns the observed block hash at height h.
func (m *monitor) hashAt(h uint64) (types.Digest, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.chain[h]
	if !ok {
		return types.Digest{}, false
	}
	return rec.hash, true
}

// verdict fills the report from the monitor and cluster state.
func verdict(cfg Config, c *Cluster, mon *monitor, rep *Report) {
	rep.Acked = mon.ackedCount()
	rep.Committed = mon.chainLen()

	st, restarts, wipes := c.totals()
	rep.Restarts, rep.Wipes = restarts, wipes
	rep.Installs = st.Installs
	rep.InstalledSnaps = st.InstalledSnaps
	rep.AttestationsFormed = st.AttestationsFormed
	rep.AttestedRejoins = st.AttestedTargets
	for _, n := range c.nodes {
		rep.FsyncFails += n.fp.FsyncFails.Load()
		rep.TornWrites += n.fp.TornWrites.Load()
	}

	rep.Failures = append(rep.Failures, mon.takeViolations()...)

	if !rep.Converged {
		rep.Failures = append(rep.Failures, "cluster did not reconverge after healing (heights/heads/state digests still differ)")
	} else if rep.Height > 0 {
		// Height is a block count; the head block sits at index Height-1.
		if h, ok := mon.hashAt(rep.Height - 1); !ok {
			rep.Failures = append(rep.Failures, fmt.Sprintf("converged head block %d never observed by the monitor", rep.Height-1))
		} else if h != rep.HeadHash {
			rep.Failures = append(rep.Failures, fmt.Sprintf(
				"converged head %x does not match the monitored chain %x at block %d", rep.HeadHash[:8], h[:8], rep.Height-1))
		}
	}

	if lost := mon.checkLoss(); len(lost) > 0 {
		msg := fmt.Sprintf("%d acked transactions missing from the chain", len(lost))
		for i, k := range lost {
			if i == 5 {
				msg += ", ..."
				break
			}
			msg += fmt.Sprintf(" (client %d seq %d)", k.client, k.seq)
		}
		rep.Failures = append(rep.Failures, msg)
	}
	rep.Failures = append(rep.Failures, mon.checkDuplicates()...)

	if rep.Acked == 0 {
		rep.Failures = append(rep.Failures, "no transaction was ever acknowledged — the cluster made no progress under faults")
	}

	if rep.AttestedRejoins == 0 {
		msg := "no state transfer used the checkpoint-attested offer path"
		if cfg.RequireAttestedRejoin {
			rep.Failures = append(rep.Failures, msg)
		} else if rep.Wipes > 0 {
			rep.Warnings = append(rep.Warnings, msg+" (healed via byte-identical offers)")
		}
	}
	if rep.Wipes > 0 && rep.InstalledSnaps == 0 {
		rep.Warnings = append(rep.Warnings, "nodes were wiped but no snapshot install was recorded")
	}

	// Surface flight-recorder anomalies even on success: a pass with a
	// view-change storm in it is worth a look.
	snaps := c.flightSnapshots()
	if anoms := flight.DetectAnomalies(flight.Merge(snaps)); len(anoms) > 0 {
		for i, a := range anoms {
			if i == 8 {
				rep.Warnings = append(rep.Warnings, fmt.Sprintf("(%d more anomalies)", len(anoms)-i))
				break
			}
			rep.Warnings = append(rep.Warnings, fmt.Sprintf("flight anomaly: %s: %s", a.Title, a.Detail))
		}
	}
}

// flightSnapshots gathers every incarnation's ring: the dead ones captured
// at each kill plus the running ones' live dumps.
func (c *Cluster) flightSnapshots() []flight.Snapshot {
	var snaps []flight.Snapshot
	for _, n := range c.nodes {
		n.mu.Lock()
		snaps = append(snaps, n.deadSnaps...)
		if n.up && n.met != nil && n.met.Flight != nil {
			snaps = append(snaps, n.met.Flight.Dump(0))
		}
		n.mu.Unlock()
	}
	return snaps
}

// dumpArtifacts persists the black boxes of a failed run: each ring as a
// flight.bin-format dump plus the merged, anomaly-annotated timeline.
func dumpArtifacts(cfg Config, c *Cluster, mon *monitor, rep *Report) {
	if cfg.ArtifactDir == "" {
		return
	}
	if err := os.MkdirAll(cfg.ArtifactDir, 0o755); err != nil {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf("artifact dir: %v", err))
		return
	}
	snaps := c.flightSnapshots()
	for i, snap := range snaps {
		path := filepath.Join(cfg.ArtifactDir, fmt.Sprintf("chaos-ring-%02d.bin", i))
		f, err := os.Create(path)
		if err != nil {
			continue
		}
		_ = flight.EncodeBinary(f, snap)
		f.Close()
	}
	tl := flight.Merge(snaps)
	anoms := flight.DetectAnomalies(tl)
	if f, err := os.Create(filepath.Join(cfg.ArtifactDir, "chaos-timeline.txt")); err == nil {
		fmt.Fprintf(f, "%s\n%s\n", rep.Summary(), rep.Schedule)
		flight.WriteTimeline(f, tl, anoms)
		f.Close()
	}
	rep.Warnings = append(rep.Warnings, "artifacts written to "+cfg.ArtifactDir)
}
