// Package chaos is the randomized fault-injection harness: it drives a
// real multi-node TCP cluster under sustained closed-loop client load
// while a seeded schedule injects the failure modes a deployment actually
// meets — abrupt process death (kill -9), data-directory wipes, network
// partitions, fsync errors, and torn writes at crash — and verifies after
// every run that no acknowledged transaction was lost, that no height ever
// carried two different blocks, and that the surviving replicas reconverge
// to one head.
//
// The harness is built from four pieces:
//
//   - Schedule (schedule.go): a reproducible fault timeline. Generate is a
//     pure function of its seed, so a failing run is replayed exactly by
//     rerunning the same seed; the generator never disturbs more than f
//     nodes at once, keeping a live quorum by construction.
//   - Cluster (cluster.go): node lifecycle over real loopback TCP. Every
//     node is a full runtime.Replica — durable WAL, periodic checkpoints
//     with WAL pruning, state transfer with checkpoint-boundary
//     attestation, flight recorder — behind a transport.TCP that shares
//     one transport.Faults matrix (partitions, per-link WAN delays) and
//     one wal.Failpoints per node (fsync-error, torn-write).
//   - Monitor (monitor.go): accumulates every acknowledged transaction and
//     every committed block the moment a live replica materializes it,
//     cross-checking block identity across replicas while the run is still
//     going — a safety violation is caught at the height it happens, not
//     at the end.
//   - Verdict (chaos.go, verify.go): after the schedule drains, the
//     cluster heals, down nodes restart, and the run passes only if the
//     cluster reconverges (equal height, head hash, and state digest
//     everywhere), every acked transaction is on the chain, and no
//     transaction committed twice. A failed run dumps each incarnation's
//     flight ring and the merged cluster timeline with detected anomalies
//     — the same artifacts a production incident would leave behind.
//
// Run it via rccbench -exp chaos (flags: -seed, -nodes, -duration, -wan).
package chaos
