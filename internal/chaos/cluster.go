package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/runtime"
	"repro/internal/simnet"
	"repro/internal/statesync"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// Config parameterizes one chaos run.
type Config struct {
	// Nodes is the cluster size (default 4).
	Nodes int
	// Clients is the number of closed-loop clients (default Nodes).
	Clients int
	// Window is each client's pipeline depth (default 4).
	Window int
	// Records sizes the YCSB store (default 1000).
	Records int
	// BatchSize groups transactions per proposal (default 2 — small
	// batches keep heights churning, which is what stresses checkpoints,
	// pruning, and state transfer).
	BatchSize int
	// SnapshotEvery is the checkpoint cadence in blocks (default 8).
	SnapshotEvery uint64
	// Duration is the full run length including warmup and settle
	// (default 60s).
	Duration time.Duration
	// Seed drives the fault schedule (and nothing else): same seed, same
	// schedule.
	Seed int64
	// WAN installs the five-region geo-latency profile
	// (simnet.WANLatencyMatrix) as constant per-link delays on the live
	// transport, so faults land on links that already carry tens of
	// milliseconds.
	WAN bool
	// Secret keys both the transport MACs and the checkpoint-attestation
	// threshold scheme (default "chaos").
	Secret string
	// RequireAttestedRejoin fails the run unless at least one state
	// transfer locked its target through a checkpoint-boundary
	// attestation (the under-load rejoin path). Off, the condition is
	// reported but not enforced — short smoke runs may legitimately heal
	// through the byte-identical offer path alone.
	RequireAttestedRejoin bool
	// ArtifactDir, when set, receives flight dumps and the merged cluster
	// timeline of a failed run.
	ArtifactDir string
	// Schedule overrides the generated schedule (Seed is then only
	// reported, not used).
	Schedule *Schedule
	// ProgressTimeout is the per-instance failure-detection timeout
	// (default 2s: longer than transient scheduling noise, much shorter
	// than an episode, so in-the-dark instances are detected mid-run).
	ProgressTimeout time.Duration
	// RetryTimeout is the clients' retransmission timeout (default 500ms).
	RetryTimeout time.Duration
	// Logf, when set, receives harness progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Nodes < 4 {
		c.Nodes = 4
	}
	if c.Clients <= 0 {
		c.Clients = c.Nodes
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Records <= 0 {
		c.Records = 1000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 2
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 8
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Secret == "" {
		c.Secret = "chaos"
	}
	if c.ProgressTimeout <= 0 {
		c.ProgressTimeout = 2 * time.Second
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 500 * time.Millisecond
	}
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// node is one cluster member across all its incarnations.
type node struct {
	id   types.ReplicaID
	dir  string
	addr string // fixed across restarts so peers redial the same place
	fp   *wal.Failpoints

	mu  sync.Mutex
	rep *runtime.Replica
	tcp *transport.TCP
	met *obs.NodeMetrics
	up  bool

	// Lifetime totals accumulated across incarnations.
	restarts  int
	wipes     int
	syncStats statesync.Stats // counters only; summed at each teardown
	deadSnaps []flight.Snapshot
}

// Cluster is a live TCP deployment under the harness's control.
type Cluster struct {
	cfg    Config
	params quorum.Params
	faults *transport.Faults
	attest *crypto.ThresholdScheme
	base   string
	nodes  []*node

	clientMu sync.Mutex
	clients  []*clientHandle
	stopSub  bool // closed-loop submission stops when set
}

type clientHandle struct {
	id   types.ClientID
	mach *client.Client
	proc *runtime.ClientProc
	wl   *ycsb.Workload

	// submitted and completed track the closed loop from outside the
	// client's event loop (client.Client itself is single-threaded, so its
	// own Done is off-limits to the harness). drained = completed caught
	// up with submitted after StopSubmission.
	submitted atomic.Uint64
	completed atomic.Uint64
}

// NewCluster boots cfg.Nodes replicas over loopback TCP. Call StartClients
// to begin load, Close to tear down.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.defaults()
	params, err := quorum.NewParams(cfg.Nodes)
	if err != nil {
		return nil, err
	}
	base, err := os.MkdirTemp("", "rcc-chaos-")
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		params: params,
		faults: transport.NewFaults(),
		attest: crypto.NewThresholdScheme(cfg.Nodes, params.F+1, []byte(cfg.Secret)),
		base:   base,
	}
	if cfg.WAN {
		for from, row := range simnet.WANLatencyMatrix(cfg.Nodes) {
			for to, d := range row {
				c.faults.SetLinkDelay(types.ReplicaID(from), types.ReplicaID(to), d)
			}
		}
	}
	c.nodes = make([]*node, cfg.Nodes)
	for i := range c.nodes {
		c.nodes[i] = &node{
			id:  types.ReplicaID(i),
			dir: filepath.Join(base, fmt.Sprintf("replica-%d", i)),
			fp:  &wal.Failpoints{},
		}
	}
	// Boot in two passes: listeners first (addresses), then peers+run.
	for _, n := range c.nodes {
		if err := c.boot(n, "127.0.0.1:0"); err != nil {
			c.Close()
			return nil, err
		}
	}
	peers := c.peerMap()
	for _, n := range c.nodes {
		n.tcp.SetPeers(peers)
		n.rep.Run()
		n.up = true
	}
	return c, nil
}

// peerMap returns the fixed replica address book.
func (c *Cluster) peerMap() map[types.ReplicaID]string {
	peers := make(map[types.ReplicaID]string, len(c.nodes))
	for _, n := range c.nodes {
		peers[n.id] = n.addr
	}
	return peers
}

// boot builds one incarnation of n: fresh metrics catalog and flight ring
// (like a real process), durable store from whatever the data dir holds,
// state transfer with checkpoint-boundary attestation, WAL pruning, and
// the shared fault matrix on the transport. It does not Run the replica.
func (c *Cluster) boot(n *node, listen string) error {
	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, 2048)
	rep, err := runtime.New(runtime.Config{
		ID:     n.id,
		Params: c.params,
		Machine: rcc.New(rcc.Config{
			BatchSize:       c.cfg.BatchSize,
			Window:          8,
			ProgressTimeout: c.cfg.ProgressTimeout,
			Metrics:         met,
		}),
		App:     ycsb.NewStore(c.cfg.Records),
		DataDir: n.dir,
		Journaling: runtime.JournalOptions{
			Async:         true,
			SnapshotEvery: c.cfg.SnapshotEvery,
			PruneWAL:      true,
			Failpoints:    n.fp,
		},
		ReplyToClients: true,
		StateSync: runtime.StateSyncOptions{
			Enabled:      true,
			OfferWait:    150 * time.Millisecond,
			Retry:        300 * time.Millisecond,
			SteadyProbe:  500 * time.Millisecond,
			AttestScheme: c.attest,
		},
		Flight:  runtime.FlightOptions{MirrorInterval: 500 * time.Millisecond},
		Metrics: met,
		Logf:    c.cfg.Logf,
	})
	if err != nil {
		return fmt.Errorf("replica %d: %w", n.id, err)
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{
		Self:   n.id,
		Listen: listen,
		Auth:   crypto.NewMAC(crypto.PartyID(n.id), []byte(c.cfg.Secret)),
		Faults: c.faults,
		Flight: met.Flight,
	}, rep)
	if err != nil {
		return fmt.Errorf("replica %d transport: %w", n.id, err)
	}
	rep.Attach(tcp)
	n.rep, n.tcp, n.met = rep, tcp, met
	n.addr = tcp.Addr()
	return nil
}

// Kill takes node i down the way kill -9 would and accumulates the dying
// incarnation's statesync counters and flight ring.
func (c *Cluster) Kill(i int) {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.up {
		return
	}
	c.harvestLocked(n)
	n.rep.Kill()
	n.up = false
	c.cfg.logf("chaos: killed node %d", i)
}

// harvestLocked folds the current incarnation's counters and ring into the
// node's lifetime totals. Caller holds n.mu.
func (c *Cluster) harvestLocked(n *node) {
	if n.rep == nil {
		return
	}
	if sy := n.rep.StateSync(); sy != nil {
		st := sy.Stats()
		n.syncStats.Installs += st.Installs
		n.syncStats.InstalledSnaps += st.InstalledSnaps
		n.syncStats.AttestationsFormed += st.AttestationsFormed
		n.syncStats.AttestedTargets += st.AttestedTargets
		n.syncStats.AttSharesRejected += st.AttSharesRejected
		n.syncStats.AttOffersRejected += st.AttOffersRejected
	}
	if n.met != nil && n.met.Flight != nil {
		n.deadSnaps = append(n.deadSnaps, n.met.Flight.Dump(0))
		if len(n.deadSnaps) > 6 {
			n.deadSnaps = n.deadSnaps[len(n.deadSnaps)-6:]
		}
	}
}

// Wipe removes node i's data directory. The node must be down.
func (c *Cluster) Wipe(i int) error {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.up {
		return fmt.Errorf("chaos: wipe of running node %d", i)
	}
	n.wipes++
	c.cfg.logf("chaos: wiped node %d", i)
	return os.RemoveAll(n.dir)
}

// Restart boots a fresh incarnation of node i at its original address.
func (c *Cluster) Restart(i int) error {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.up {
		return nil
	}
	if err := c.boot(n, n.addr); err != nil {
		return err
	}
	n.tcp.SetPeers(c.peerMap())
	n.rep.Run()
	n.up = true
	n.restarts++
	c.cfg.logf("chaos: restarted node %d (restart #%d)", i, n.restarts)
	return nil
}

// Faults exposes the shared link-fault matrix.
func (c *Cluster) Faults() *transport.Faults { return c.faults }

// Isolate cuts node i off from every peer.
func (c *Cluster) Isolate(i int) {
	c.faults.Isolate(types.ReplicaID(i), c.cfg.Nodes)
	c.cfg.logf("chaos: isolated node %d", i)
}

// Rejoin heals every link of node i (other nodes' concurrent cuts, if any,
// stay).
func (c *Cluster) Rejoin(i int) {
	for j := 0; j < c.cfg.Nodes; j++ {
		if j != i {
			c.faults.Heal(types.ReplicaID(i), types.ReplicaID(j))
		}
	}
	c.cfg.logf("chaos: rejoined node %d", i)
}

// Up reports whether node i currently runs.
func (c *Cluster) Up(i int) bool {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// eachUp invokes f for every running node while holding its lifecycle
// lock, so the incarnation cannot be torn down mid-visit.
func (c *Cluster) eachUp(f func(n *node)) {
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.up {
			f(n)
		}
		n.mu.Unlock()
	}
}

// StartClients launches the closed-loop load: each client keeps Window
// transactions in flight, submitting a fresh one the moment one completes,
// and reports every completion — an acked transaction — to mon.
func (c *Cluster) StartClients(mon *monitor) {
	peers := c.peerMap()
	for i := 0; i < c.cfg.Clients; i++ {
		id := types.ClientID(i + 1)
		h := &clientHandle{
			id:   id,
			mach: client.New(client.Config{Client: id, Broadcast: true, RetryTimeout: c.cfg.RetryTimeout}),
			wl:   ycsb.NewWorkload(ycsb.WorkloadConfig{Records: c.cfg.Records, Seed: int64(id)}),
		}
		h.mach.SetWindow(c.cfg.Window)
		h.proc = runtime.NewClient(id, c.params, h.mach)
		h.mach.SetCompletionHook(func(comp client.Completion) {
			mon.acked(id, comp.Seq)
			h.completed.Add(1)
			c.clientMu.Lock()
			stop := c.stopSub
			c.clientMu.Unlock()
			if !stop {
				// Refill the window from inside the client's own event
				// loop; Submission is the local bridge for exactly this.
				h.submitted.Add(1)
				h.proc.DeliverReplica(types.NoReplica, &client.Submission{Tx: h.wl.Next(id)})
			}
		})
		for j := 0; j < c.cfg.Window; j++ {
			h.submitted.Add(1)
			h.mach.Submit(h.wl.Next(id))
		}
		tcp, err := transport.NewTCP(transport.TCPConfig{
			IsClient: true, SelfClient: id, Peers: peers,
			Auth: crypto.NewMAC(crypto.ClientPartyID(id), []byte(c.cfg.Secret)),
		}, h.proc)
		if err != nil {
			c.cfg.logf("chaos: client %d transport: %v", id, err)
			continue
		}
		h.proc.Attach(tcp)
		h.proc.Run()
		c.clients = append(c.clients, h)
	}
}

// StopSubmission stops the closed loop: in-flight transactions may still
// complete (and are still recorded as acked), but no new ones enter.
func (c *Cluster) StopSubmission() {
	c.clientMu.Lock()
	c.stopSub = true
	c.clientMu.Unlock()
}

// DrainClients waits up to d for every client's in-flight window to
// complete, then stops the client processes. Returns how many clients
// drained fully. Call StopSubmission first or the loop never drains.
func (c *Cluster) DrainClients(d time.Duration) int {
	drained := func(h *clientHandle) bool {
		return h.completed.Load() >= h.submitted.Load()
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		done := 0
		for _, h := range c.clients {
			if drained(h) {
				done++
			}
		}
		if done == len(c.clients) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	n := 0
	for _, h := range c.clients {
		if drained(h) {
			n++
		}
		h.proc.Stop()
	}
	return n
}

// Close tears everything down and removes the data directories.
func (c *Cluster) Close() {
	for _, h := range c.clients {
		h.proc.Stop()
	}
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.up {
			c.harvestLocked(n)
			n.rep.Stop()
			n.up = false
		}
		n.mu.Unlock()
	}
	os.RemoveAll(c.base)
}
