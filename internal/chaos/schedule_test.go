package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestGenerateIsDeterministic is the replay guarantee: the schedule is a
// pure function of its config, so a failing chaos run reproduces from its
// seed alone.
func TestGenerateIsDeterministic(t *testing.T) {
	cfg := ScheduleConfig{Nodes: 7, Duration: 5 * time.Minute, Seed: 42}
	a := Generate(cfg)
	b := Generate(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different schedules:\n%s\nvs\n%s", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatal("a 5-minute schedule generated no fault events")
	}
	c := Generate(ScheduleConfig{Nodes: 7, Duration: 5 * time.Minute, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateRespectsBounds checks the structural invariants every
// generated schedule must satisfy: events stay inside the warmup/settle
// fences, episodes have positive length, nodes are in range, and the
// number of simultaneously disturbed nodes never exceeds f — the bound
// that keeps a quorum alive by construction.
func TestGenerateRespectsBounds(t *testing.T) {
	for _, nodes := range []int{4, 7, 10} {
		cfg := ScheduleConfig{Nodes: nodes, Duration: 4 * time.Minute, Seed: 7}
		cfg.defaults()
		s := Generate(cfg)
		f := (nodes - 1) / 3
		horizon := cfg.Duration - cfg.Settle
		for i, e := range s.Events {
			if e.At < cfg.Warmup || e.End > horizon {
				t.Fatalf("nodes=%d event %d [%s, %s] outside fences [%s, %s]",
					nodes, i, e.At, e.End, cfg.Warmup, horizon)
			}
			if e.End <= e.At {
				t.Fatalf("nodes=%d event %d has non-positive duration", nodes, i)
			}
			if e.Node < 0 || e.Node >= nodes {
				t.Fatalf("nodes=%d event %d targets node %d", nodes, i, e.Node)
			}
			if e.Kind.String() == "" {
				t.Fatalf("nodes=%d event %d has unnamed kind %d", nodes, i, e.Kind)
			}
			// Concurrency bound at this event's start.
			active := 0
			for j, other := range s.Events {
				if j != i && other.At <= e.At && e.At < other.End {
					active++
				}
			}
			if active+1 > f {
				t.Fatalf("nodes=%d: %d nodes disturbed at %s, bound is f=%d", nodes, active+1, e.At, f)
			}
		}
		// No node is double-booked: each node's episodes must not overlap.
		last := make(map[int]time.Duration)
		for _, e := range s.Events {
			if prev, ok := last[e.Node]; ok && e.At < prev {
				t.Fatalf("nodes=%d: node %d disturbed again at %s before healing at %s", nodes, e.Node, e.At, prev)
			}
			last[e.Node] = e.End
		}
	}
}

// TestGenerateCoversKinds checks a long default-seed schedule exercises
// every fault class — the point of weighting wipes and partitions high
// enough that state transfer and link healing always run.
func TestGenerateCoversKinds(t *testing.T) {
	s := Generate(ScheduleConfig{Nodes: 7, Duration: 15 * time.Minute, Seed: 1})
	seen := make(map[Kind]int)
	for _, e := range s.Events {
		seen[e.Kind]++
	}
	for _, k := range []Kind{Kill, Wipe, Torn, FsyncFail, Partition} {
		if seen[k] == 0 {
			t.Errorf("15-minute schedule never injected %s", k)
		}
	}
}
