package chaos

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/statesync"
	"repro/internal/types"
)

// errInjectedFsync is the disk error the FsyncFail episode arms.
var errInjectedFsync = errors.New("chaos: injected fsync error")

// tornTailBytes is how much of the active WAL segment a Torn episode rips
// off at the kill — enough to land mid-record at any realistic record size.
const tornTailBytes = 40

// Report is one chaos run's outcome. Failures empty means the run passed.
type Report struct {
	Seed     int64
	Nodes    int
	Clients  int
	Duration time.Duration
	Schedule Schedule

	Acked     int          // transactions acknowledged to clients
	Committed int          // distinct heights observed committed
	Height    uint64       // converged final height
	HeadHash  types.Digest // converged head hash
	Restarts  int
	Wipes     int

	// State-transfer and attestation activity across all incarnations.
	Installs           uint64
	InstalledSnaps     uint64
	AttestationsFormed uint64
	AttestedRejoins    uint64 // fetch targets locked via checkpoint attestation
	FsyncFails         uint64
	TornWrites         uint64

	ClientsDrained int
	Converged      bool

	Failures []string // invariant violations; empty = pass
	Warnings []string // notable but non-fatal observations
}

// Passed reports whether every invariant held.
func (r *Report) Passed() bool { return len(r.Failures) == 0 }

// Summary renders the verdict in a few lines.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	out := fmt.Sprintf(
		"chaos %s: seed=%d nodes=%d clients=%d duration=%s\n"+
			"  acked=%d committed-heights=%d final-height=%d converged=%v drained=%d/%d\n"+
			"  restarts=%d wipes=%d installs=%d (snapshots=%d) attestations=%d attested-rejoins=%d\n"+
			"  fsync-faults=%d torn-writes=%d\n",
		verdict, r.Seed, r.Nodes, r.Clients, r.Duration,
		r.Acked, r.Committed, r.Height, r.Converged, r.ClientsDrained, r.Clients,
		r.Restarts, r.Wipes, r.Installs, r.InstalledSnaps, r.AttestationsFormed, r.AttestedRejoins,
		r.FsyncFails, r.TornWrites)
	for _, f := range r.Failures {
		out += "  FAIL: " + f + "\n"
	}
	for _, w := range r.Warnings {
		out += "  warn: " + w + "\n"
	}
	return out
}

// action is one timed step of the fault driver.
type action struct {
	at   time.Duration
	desc string
	fn   func(rep *Report)
}

// Run executes one chaos run end to end: boot, load, scheduled faults,
// heal, reconvergence, verdict. The returned error covers harness-level
// breakage (cluster failed to boot); protocol invariant violations land in
// Report.Failures.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	sched := Generate(ScheduleConfig{Nodes: cfg.Nodes, Duration: cfg.Duration, Seed: cfg.Seed})
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	rep := &Report{
		Seed: cfg.Seed, Nodes: cfg.Nodes, Clients: cfg.Clients,
		Duration: cfg.Duration, Schedule: sched,
	}

	mon := newMonitor(cfg.Nodes)
	cluster, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	cluster.StartClients(mon)

	// The monitor sweeps continuously so every committed block is captured
	// while some executing replica still materializes it.
	monDone := make(chan struct{})
	monStop := make(chan struct{})
	go func() {
		defer close(monDone)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-monStop:
				return
			case <-tick.C:
				mon.scan(cluster)
			}
		}
	}()

	// Drive the schedule in real time. Each episode contributes an apply
	// action and a heal action; the driver sleeps between them.
	runActions(cfg, cluster, rep, buildActions(cfg, cluster, sched))

	// Heal phase: stop new load, restore every node and link, and let the
	// survivors drag the stragglers back to one head.
	cluster.StopSubmission()
	for i := 0; i < cfg.Nodes; i++ {
		cluster.nodes[i].fp.HealFsync()
		cluster.Rejoin(i)
		if !cluster.Up(i) {
			restartOrWipe(cluster, i, rep)
		}
	}
	rep.ClientsDrained = cluster.DrainClients(20 * time.Second)

	rep.Converged = waitConverged(cluster, rep, 45*time.Second)

	close(monStop)
	<-monDone
	mon.scan(cluster) // pick up the final blocks before the verdict
	verdict(cfg, cluster, mon, rep)
	if !rep.Passed() {
		dumpArtifacts(cfg, cluster, mon, rep)
	}
	return rep, nil
}

// buildActions flattens the schedule into a sorted action timeline.
func buildActions(cfg Config, cluster *Cluster, sched Schedule) []action {
	var acts []action
	for _, ev := range sched.Events {
		ev := ev
		switch ev.Kind {
		case Kill:
			acts = append(acts,
				action{ev.At, fmt.Sprintf("kill node %d", ev.Node), func(rep *Report) {
					cluster.Kill(ev.Node)
				}},
				action{ev.End, fmt.Sprintf("restart node %d", ev.Node), func(rep *Report) {
					restartOrWipe(cluster, ev.Node, rep)
				}})
		case Wipe:
			acts = append(acts,
				action{ev.At, fmt.Sprintf("kill node %d (pre-wipe)", ev.Node), func(rep *Report) {
					cluster.Kill(ev.Node)
				}},
				action{ev.End, fmt.Sprintf("wipe+restart node %d", ev.Node), func(rep *Report) {
					if err := cluster.Wipe(ev.Node); err != nil {
						rep.Failures = append(rep.Failures, err.Error())
						return
					}
					restartOrWipe(cluster, ev.Node, rep)
				}})
		case Torn:
			acts = append(acts,
				action{ev.At, fmt.Sprintf("torn-write kill node %d", ev.Node), func(rep *Report) {
					cluster.nodes[ev.Node].fp.TearOnCrash(tornTailBytes)
					cluster.Kill(ev.Node)
				}},
				action{ev.End, fmt.Sprintf("restart node %d (torn tail)", ev.Node), func(rep *Report) {
					restartOrWipe(cluster, ev.Node, rep)
				}})
		case FsyncFail:
			acts = append(acts,
				action{ev.At, fmt.Sprintf("fsync-fail node %d", ev.Node), func(rep *Report) {
					cluster.nodes[ev.Node].fp.FailFsync(errInjectedFsync)
				}},
				action{ev.End, fmt.Sprintf("kill+heal+restart node %d", ev.Node), func(rep *Report) {
					cluster.Kill(ev.Node)
					cluster.nodes[ev.Node].fp.HealFsync()
					restartOrWipe(cluster, ev.Node, rep)
				}})
		case Partition:
			acts = append(acts,
				action{ev.At, fmt.Sprintf("partition node %d", ev.Node), func(rep *Report) {
					cluster.Isolate(ev.Node)
				}},
				action{ev.End, fmt.Sprintf("heal node %d", ev.Node), func(rep *Report) {
					cluster.Rejoin(ev.Node)
				}})
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	return acts
}

// runActions plays the timeline in real time, then sleeps out the
// remainder of the configured duration (the settle tail).
func runActions(cfg Config, cluster *Cluster, rep *Report, acts []action) {
	start := time.Now()
	for _, a := range acts {
		if d := a.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		cfg.logf("chaos: %s (t=%s)", a.desc, time.Since(start).Round(time.Millisecond))
		a.fn(rep)
	}
	if d := cfg.Duration - time.Since(start); d > 0 {
		time.Sleep(d)
	}
}

// restartOrWipe restarts a node; when the restart itself fails — disk
// state the store refuses — that is a robustness finding, and the harness
// falls back to wipe+restart so the run can still reach a verdict.
func restartOrWipe(cluster *Cluster, i int, rep *Report) {
	err := cluster.Restart(i)
	if err == nil {
		return
	}
	rep.Failures = append(rep.Failures, fmt.Sprintf("node %d restart rejected its own disk state: %v", i, err))
	if werr := cluster.Wipe(i); werr == nil {
		_ = cluster.Restart(i)
	}
}

// totals sums lifetime statesync counters plus the running incarnations'.
func (c *Cluster) totals() (st statesync.Stats, restarts, wipes int) {
	for _, n := range c.nodes {
		n.mu.Lock()
		st.Installs += n.syncStats.Installs
		st.InstalledSnaps += n.syncStats.InstalledSnaps
		st.AttestationsFormed += n.syncStats.AttestationsFormed
		st.AttestedTargets += n.syncStats.AttestedTargets
		if n.up {
			if sy := n.rep.StateSync(); sy != nil {
				live := sy.Stats()
				st.Installs += live.Installs
				st.InstalledSnaps += live.InstalledSnaps
				st.AttestationsFormed += live.AttestationsFormed
				st.AttestedTargets += live.AttestedTargets
			}
		}
		restarts += n.restarts
		wipes += n.wipes
		n.mu.Unlock()
	}
	return st, restarts, wipes
}
