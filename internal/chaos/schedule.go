package chaos

import (
	"fmt"
	"math/rand"
	"time"
)

// Kind is one fault class the harness can inject.
type Kind uint8

// Fault kinds. Every kind except Partition takes the node through a full
// kill -9 and restart; they differ in what happens to its disk.
const (
	// Kill is abrupt process death with the data directory intact: the
	// node restarts from its WAL and catches up through the protocol or a
	// range-only state transfer.
	Kill Kind = iota + 1
	// Wipe is Kill plus rm -rf of the data directory before restart: the
	// node comes back with nothing and must rebuild through a full
	// snapshot state transfer.
	Wipe
	// Torn arms the torn-write failpoint before the kill: the active WAL
	// segment loses its tail mid-record, and the restart must repair it
	// by torn-tail truncation.
	Torn
	// FsyncFail arms the fsync-error failpoint while the node runs: its
	// journal poisons itself (sticky fatal, acks stop), and at the episode
	// end the node is killed, the failpoint healed, and the node restarted
	// to replay whatever the WAL made durable before the poison.
	FsyncFail
	// Partition cuts every link between the node and its peers for the
	// episode, then heals. The process never dies; retransmission and
	// catch-up own recovery.
	Partition
)

// String returns the kind's schedule-file name.
func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Wipe:
		return "wipe"
	case Torn:
		return "torn"
	case FsyncFail:
		return "fsync-fail"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fault episode: the fault lands at At on Node and heals
// (restart or partition heal) at End.
type Event struct {
	At   time.Duration
	End  time.Duration
	Kind Kind
	Node int
}

// Schedule is a reproducible fault timeline. Events are sorted by At and
// never disturb more than the generator's concurrency bound at once.
type Schedule struct {
	Seed   int64
	Events []Event
}

// String renders the schedule one episode per line.
func (s Schedule) String() string {
	out := fmt.Sprintf("schedule seed=%d events=%d\n", s.Seed, len(s.Events))
	for _, e := range s.Events {
		out += fmt.Sprintf("  %8s..%-8s %-10s node %d\n",
			e.At.Round(time.Millisecond), e.End.Round(time.Millisecond), e.Kind, e.Node)
	}
	return out
}

// ScheduleConfig parameterizes Generate.
type ScheduleConfig struct {
	// Nodes is the cluster size.
	Nodes int
	// Duration is the full run length; no episode ends after
	// Duration-Settle.
	Duration time.Duration
	// Seed makes the schedule reproducible: same config, same schedule.
	Seed int64
	// MeanGap is the mean time between fault injections (exponential).
	// Default Duration/12, clamped to [2s, 20s].
	MeanGap time.Duration
	// MinDown/MaxDown bound each episode's length. Defaults 2s / 8s.
	MinDown, MaxDown time.Duration
	// Warmup is the fault-free prefix that lets the cluster form and take
	// first load. Default 3s.
	Warmup time.Duration
	// Settle is the fault-free tail that gives the healed cluster time to
	// reconverge under the harness's own verification. Default 8s.
	Settle time.Duration
	// MaxConcurrent bounds simultaneously disturbed nodes. Default (and
	// cap) f = (Nodes-1)/3, so a quorum stays live by construction.
	MaxConcurrent int
}

func (c *ScheduleConfig) defaults() {
	if c.MeanGap <= 0 {
		c.MeanGap = c.Duration / 12
		if c.MeanGap < 2*time.Second {
			c.MeanGap = 2 * time.Second
		}
		if c.MeanGap > 20*time.Second {
			c.MeanGap = 20 * time.Second
		}
	}
	if c.MinDown <= 0 {
		c.MinDown = 2 * time.Second
	}
	if c.MaxDown <= c.MinDown {
		c.MaxDown = c.MinDown + 6*time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = 3 * time.Second
	}
	if c.Settle <= 0 {
		c.Settle = 8 * time.Second
	}
	f := (c.Nodes - 1) / 3
	if f < 1 {
		f = 1
	}
	if c.MaxConcurrent <= 0 || c.MaxConcurrent > f {
		c.MaxConcurrent = f
	}
}

// kindWeights is the fault mix: process deaths dominate (they are the
// common failure), wipes and partitions are frequent enough that every
// default-seed run exercises state transfer and link healing, disk faults
// ride along.
var kindWeights = []struct {
	kind   Kind
	weight int
}{
	{Kill, 30},
	{Wipe, 22},
	{Partition, 25},
	{Torn, 13},
	{FsyncFail, 10},
}

// Generate builds a reproducible schedule: a pure function of cfg (the
// driver does not consult the clock or any other ambient state), so a
// failing run replays exactly from its seed. Episode starts follow an
// exponential arrival process; each episode picks a fault kind by weight, a
// duration uniform in [MinDown, MaxDown], and a node currently undisturbed
// — skipping forward when the concurrency bound leaves no node free.
func Generate(cfg ScheduleConfig) Schedule {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{Seed: cfg.Seed}
	busyUntil := make([]time.Duration, cfg.Nodes)
	horizon := cfg.Duration - cfg.Settle

	t := cfg.Warmup
	for {
		t += time.Duration(rng.ExpFloat64() * float64(cfg.MeanGap))
		if t >= horizon {
			break
		}
		down := cfg.MinDown + time.Duration(rng.Int63n(int64(cfg.MaxDown-cfg.MinDown)))
		end := t + down
		if end > horizon {
			end = horizon
		}
		if end-t < cfg.MinDown/2 {
			continue // too close to the tail to be worth injecting
		}
		// Respect the concurrency bound, then pick uniformly among free
		// nodes. Draw the candidate before the checks so the rng stream —
		// and therefore the rest of the schedule — does not depend on
		// which episodes happened to be skipped.
		candidate := rng.Intn(cfg.Nodes)
		active := 0
		for _, bu := range busyUntil {
			if bu > t {
				active++
			}
		}
		if active >= cfg.MaxConcurrent || busyUntil[candidate] > t {
			continue
		}
		kind := pickKind(rng)
		busyUntil[candidate] = end
		s.Events = append(s.Events, Event{At: t, End: end, Kind: kind, Node: candidate})
	}
	return s
}

func pickKind(rng *rand.Rand) Kind {
	total := 0
	for _, kw := range kindWeights {
		total += kw.weight
	}
	n := rng.Intn(total)
	for _, kw := range kindWeights {
		if n < kw.weight {
			return kw.kind
		}
		n -= kw.weight
	}
	return Kill
}

// DedupSchedule is the deterministic schedule provoking the
// synced-replica-becomes-primary dedup hazard: node 0 — in RCC the primary
// of instance 0, which keeps serving its assigned clients — is wiped
// mid-run while those clients' retry timers keep retransmitting in-flight
// requests. After the snapshot state transfer installs, node 0 resumes
// proposing for instance 0; if the transferred per-client dedup floors were
// not pushed back down into the instance, the retransmits would re-commit
// already-delivered sequence numbers, which the monitor's duplicate check
// catches.
func DedupSchedule(duration time.Duration) Schedule {
	third := duration / 3
	return Schedule{
		Seed: -1,
		Events: []Event{
			{At: third, End: third + third/2, Kind: Wipe, Node: 0},
		},
	}
}
