package chaos

// The monitor is the harness's memory: it records every transaction the
// moment a client acknowledges it and every block the moment any live
// replica materializes it. Recording during the run — not after — matters
// twice over. First, a replica holds a committed block in memory only
// until its own next restart replays from a pruned WAL; scanning
// continuously guarantees some replica that executed the block is still
// holding it when the monitor looks (the schedule keeps a quorum live, and
// the scan period is far below the minimum episode gap). Second,
// cross-replica block identity is checked at the height it diverges, so a
// safety violation surfaces mid-run with the conflicting hashes in hand
// instead of as an unexplained head mismatch at the end.

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// txKey identifies one client transaction.
type txKey struct {
	client types.ClientID
	seq    uint64
}

// blockRec is the monitor's record of one committed height.
type blockRec struct {
	hash types.Digest
	txns []txKey
}

// monitor accumulates acked transactions and the observed chain.
type monitor struct {
	mu sync.Mutex
	// ackedSet maps every client-acknowledged transaction (f+1 matching
	// replies reached the client).
	ackedSet map[txKey]struct{}
	// chain maps block index (0-based, ledger.Block.Height) to the first
	// block observed there; later observations must match it bit for bit.
	chain map[uint64]*blockRec
	// perNode tracks each node's scan frontier — the next unscanned block
	// index — so a scan is O(new blocks).
	perNode []uint64
	// violations are safety findings caught while scanning.
	violations []string
}

func newMonitor(nodes int) *monitor {
	return &monitor{
		ackedSet: make(map[txKey]struct{}),
		chain:    make(map[uint64]*blockRec),
		perNode:  make([]uint64, nodes),
	}
}

// acked records one client completion.
func (m *monitor) acked(c types.ClientID, seq uint64) {
	m.mu.Lock()
	m.ackedSet[txKey{c, seq}] = struct{}{}
	m.mu.Unlock()
}

// scan sweeps every running replica's ledger for blocks the monitor has
// not seen and records them, cross-checking indices it has. Ledger.Height
// is a count; materialized block indices run [Base, Height).
func (m *monitor) scan(c *Cluster) {
	c.eachUp(func(n *node) {
		l := n.rep.Ledger()
		height := l.Height()
		m.mu.Lock()
		from := m.perNode[n.id]
		m.mu.Unlock()
		if base := l.Base(); from < base {
			// Blocks below the base were summarized by an installed or
			// replayed snapshot; this incarnation cannot show them.
			from = base
		}
		for h := from; h < height; h++ {
			b := l.Get(h)
			if b == nil {
				continue
			}
			m.record(h, b.Hash(), b.Batch.Txns, n.id)
		}
		m.mu.Lock()
		if height > m.perNode[n.id] {
			m.perNode[n.id] = height
		}
		m.mu.Unlock()
	})
}

// record stores or cross-checks one block observation.
func (m *monitor) record(h uint64, hash types.Digest, txns []types.Transaction, from types.ReplicaID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.chain[h]; ok {
		if prev.hash != hash {
			m.violations = append(m.violations, fmt.Sprintf(
				"height %d committed two different blocks: %x vs %x (latter from replica %d)",
				h, prev.hash[:8], hash[:8], from))
		}
		return
	}
	rec := &blockRec{hash: hash}
	for i := range txns {
		if txns[i].IsNoOp() {
			continue
		}
		rec.txns = append(rec.txns, txKey{txns[i].Client, txns[i].Seq})
	}
	m.chain[h] = rec
}

// ackedCount returns how many transactions clients acknowledged.
func (m *monitor) ackedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ackedSet)
}

// checkLoss returns the acked transactions absent from the observed chain.
// Sound because the cluster converged to one head: every replica's logical
// chain is the observed chain, so absence here is absence everywhere.
func (m *monitor) checkLoss() []txKey {
	m.mu.Lock()
	defer m.mu.Unlock()
	committed := make(map[txKey]struct{}, len(m.ackedSet))
	for _, rec := range m.chain {
		for _, k := range rec.txns {
			committed[k] = struct{}{}
		}
	}
	var lost []txKey
	for k := range m.ackedSet {
		if _, ok := committed[k]; !ok {
			lost = append(lost, k)
		}
	}
	return lost
}

// checkDuplicates returns transactions committed at more than one height —
// the re-proposal bug class a state-synced replica resuming primary duties
// would exhibit if the transferred dedup floors were dropped.
func (m *monitor) checkDuplicates() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[txKey]uint64, len(m.chain)*2)
	var dups []string
	for h, rec := range m.chain {
		for _, k := range rec.txns {
			if first, ok := seen[k]; ok {
				dups = append(dups, fmt.Sprintf(
					"client %d seq %d committed at heights %d and %d", k.client, k.seq, first, h))
				continue
			}
			seen[k] = h
		}
	}
	return dups
}

// takeViolations drains the mid-run safety findings.
func (m *monitor) takeViolations() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := m.violations
	m.violations = nil
	return v
}
