package chaos

import (
	"testing"
	"time"
)

// TestChaosShortOverTCP runs a compressed but complete chaos run over a
// real loopback-TCP cluster: seeded schedule, closed-loop clients, fault
// injection, heal, reconvergence, verdict. The schedule knobs are scaled
// down from the defaults (which assume a minute-scale run) so the test
// finishes quickly while still exercising kill/restart and the monitor's
// continuous chain capture.
func TestChaosShortOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes tens of seconds")
	}
	sched := Generate(ScheduleConfig{
		Nodes:    4,
		Duration: 14 * time.Second,
		Seed:     7,
		MeanGap:  1500 * time.Millisecond,
		MinDown:  time.Second,
		MaxDown:  2500 * time.Millisecond,
		Warmup:   time.Second,
		Settle:   4 * time.Second,
	})
	if len(sched.Events) == 0 {
		t.Fatal("short schedule generated no events; tune the knobs")
	}
	t.Logf("schedule:\n%s", sched)

	rep, err := Run(Config{
		Nodes:    4,
		Duration: 14 * time.Second,
		Seed:     7,
		Schedule: &sched,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("%s", rep.Summary())
	if !rep.Passed() {
		t.Fatalf("chaos run failed:\n%s", rep.Summary())
	}
	if !rep.Converged {
		t.Fatal("cluster did not reconverge")
	}
	if rep.Acked == 0 {
		t.Fatal("no transactions acknowledged")
	}
}

// TestChaosDedupSchedule drives the deterministic wipe-the-primary schedule:
// node 0 loses its disk mid-run while its clients keep retransmitting, then
// rebuilds through state transfer and resumes proposing. The verdict's
// duplicate-commit check is the assertion that the transferred per-client
// dedup floors survived the trip.
func TestChaosDedupSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes tens of seconds")
	}
	const dur = 12 * time.Second
	sched := DedupSchedule(dur)
	rep, err := Run(Config{
		Nodes:    4,
		Duration: dur,
		Schedule: &sched,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	t.Logf("%s", rep.Summary())
	if !rep.Passed() {
		t.Fatalf("dedup schedule failed:\n%s", rep.Summary())
	}
	if rep.Wipes == 0 {
		t.Fatal("dedup schedule never wiped node 0")
	}
}
