// Package runtime hosts the deterministic protocol state machines
// (internal/sm) on real goroutines and wall-clock timers, wiring them to a
// transport (in-memory or TCP), the execution engine, the blockchain
// ledger, and clients — the ResilientDB-style replica process.
//
// Architecture (mirroring §V-B): inbound messages funnel into a single
// event loop that drives the machine (machines are sequential by contract);
// decisions flow into the ordered executor, which applies batches to the
// application, journals blocks, and answers clients with f+1-collectible
// replies.
package runtime

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypto"
	"repro/internal/exec"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/statesync"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
)

// JournalOptions groups the durability tunables that apply when
// Config.DataDir is set.
type JournalOptions struct {
	// Sync selects the WAL sync policy (default group commit).
	Sync wal.SyncPolicy
	// Async pipelines durability: executed blocks are handed to a
	// background committer without stalling the event loop on fsync,
	// many blocks share each commit point, and client replies for a
	// block are deferred until its WAL record is reported durable — so
	// an acknowledged transaction can never be lost to a crash, while
	// the fsync cost amortizes across in-flight blocks
	// (BenchmarkAsyncJournal). When the in-flight queue (QueueDepth)
	// fills, execution back-pressures by blocking the event loop until
	// the disk catches up. Combine with SyncGroup (the default): under
	// SyncAlways the committer still batches — use sync mode when a
	// per-block fsync is the point — and under SyncNone completions mean
	// flushed, not fsynced.
	Async bool
	// QueueDepth bounds blocks executed but not yet durable in async
	// mode (default wal.DefaultQueueDepth).
	QueueDepth int
	// MaxBatchBytes caps the WAL bytes one fsync covers in async mode
	// (default wal.DefaultMaxBatchBytes).
	MaxBatchBytes int64
	// SnapshotEvery persists an application checkpoint every N decided
	// blocks when App implements store.Snapshotter (0 disables periodic
	// checkpoints; RCC's dynamic checkpoints still persist on demand).
	SnapshotEvery uint64
	// PruneWAL reclaims write-ahead-log segments made redundant by each
	// persisted checkpoint (see store.Options.PruneWAL): recovery replays
	// snapshot + suffix, so disk usage stays proportional to the
	// checkpoint interval instead of total history.
	PruneWAL bool
	// Failpoints, when non-nil, injects disk faults into the WAL
	// (fsync-error, torn-write; see wal.Failpoints). Chaos/test wiring
	// only.
	Failpoints *wal.Failpoints
}

// FlightOptions tunes the black-box flight recorder's runtime hooks. All
// thresholds follow the same convention: zero means the default, negative
// disables the hook.
type FlightOptions struct {
	// StallThreshold is how long the event loop may fail to service a
	// watchdog probe before a loop_stalled event is recorded and
	// rcc_loop_stalls_total increments (default 500ms). One event fires per
	// stall episode, not per probe interval.
	StallThreshold time.Duration
	// FsyncStallThreshold is the WAL commit-point latency above which an
	// fsync_stall event is recorded, detail = latency in nanoseconds
	// (default 250ms). Requires async journaling (the commit hook).
	FsyncStallThreshold time.Duration
	// MirrorInterval is the period of the crash-safe ring mirror written to
	// <DataDir>/flight.bin (default 2s; requires DataDir). kill -9 then
	// loses at most one interval of events; a sticky durability failure
	// additionally dumps synchronously.
	MirrorInterval time.Duration
}

func (o *FlightOptions) defaults() {
	if o.StallThreshold == 0 {
		o.StallThreshold = 500 * time.Millisecond
	}
	if o.FsyncStallThreshold == 0 {
		o.FsyncStallThreshold = 250 * time.Millisecond
	}
	if o.MirrorInterval == 0 {
		o.MirrorInterval = 2 * time.Second
	}
}

// StateSyncOptions groups the checkpoint-based state-transfer tunables.
type StateSyncOptions struct {
	// Enabled arms the subsystem (requires Config.DataDir and a Machine
	// implementing sm.StateSyncable): the replica serves its snapshots
	// and ledger to lagging peers, and when it is itself behind — wiped,
	// corrupted, or partitioned past what checkpoint catch-up bridges —
	// it fetches the f+1-attested snapshot plus ledger suffix from
	// peers, installs it crash-atomically, and rejoins consensus at the
	// cluster head.
	Enabled bool
	// ChunkBytes bounds each served snapshot chunk (default 256 KiB).
	ChunkBytes int
	// Source is the preferred transfer source; types.NoReplica (or any
	// ID outside the attesting set) falls back to automatic selection,
	// and the fetcher still rotates away on failure.
	Source types.ReplicaID
	// OfferWait / Retry / SteadyProbe tune the manager's probe gathering
	// window, failed-pass retry interval, and the steady-state re-probe
	// period (defaults in internal/statesync; tests shrink them).
	OfferWait   time.Duration
	Retry       time.Duration
	SteadyProbe time.Duration
	// AttestScheme enables checkpoint-boundary attestation when the
	// machine implements sm.BoundarySyncable: replicas exchange threshold
	// shares over each checkpoint, and a fetcher accepts one
	// aggregate-verified offer when load keeps f+1 byte-identical offers
	// from forming. All replicas must share the scheme's group secret.
	AttestScheme *crypto.ThresholdScheme
}

// ExecOptions groups the execution-engine tunables.
type ExecOptions struct {
	// Workers bounds the conflict-aware executor's concurrency per batch
	// (0 = GOMAXPROCS, 1 = serial; see exec.Options.Workers).
	Workers int
	// MinParallel is the smallest batch worth fanning out (0 = the
	// exec.DefaultMinParallel).
	MinParallel int
}

// Config parameterizes one replica process.
//
// Subsystem tunables are grouped: the flat Durability / AsyncJournal /
// JournalQueueDepth / JournalMaxBatchBytes / SnapshotEvery knobs moved
// into Journaling, and StateSync* into the StateSync group (see doc.go).
type Config struct {
	// ID is the local replica.
	ID types.ReplicaID
	// Params are the deployment's quorum parameters.
	Params quorum.Params
	// Machine is the consensus machine to host (RCC replica, standalone
	// PBFT, ...).
	Machine sm.Machine
	// App is the deterministic application decisions execute against.
	App exec.Application
	// Journal enables the blockchain ledger.
	Journal bool
	// DataDir enables the durable storage subsystem (implies Journal):
	// every decided batch is journaled through a write-ahead log under
	// this directory, and New restores ledger height and application
	// state from disk before the replica starts — a restarted replica
	// resumes at its pre-crash height with an identical head hash and
	// state digest instead of demanding state transfer from peers.
	DataDir string
	// Journaling tunes durability when DataDir is set.
	Journaling JournalOptions
	// StateSync configures the state-transfer subsystem.
	StateSync StateSyncOptions
	// Flight tunes the flight recorder's watchdog, fsync-stall detector,
	// and crash-safe disk mirror (the recorder itself lives in Metrics).
	Flight FlightOptions
	// Exec tunes the conflict-aware parallel execution engine.
	Exec ExecOptions
	// QueueDepth bounds the inbound event queue (default 4096).
	QueueDepth int
	// ReplyToClients answers the clients of executed batches.
	ReplyToClients bool
	// Metrics is the replica's instrument catalog (shared with the
	// consensus machine). New wires it through the execution engine and
	// durable store, registers the replica's own gauges plus WAL and
	// statesync counters — each labeled replica="ID" so an in-process
	// cluster can share one registry — and Attach adds the transport's.
	// Nil disables instrumentation.
	Metrics *obs.NodeMetrics
	// Logf, when set, receives runtime and state-transfer progress lines.
	Logf func(format string, args ...any)
}

// Replica is one running replica process.
type Replica struct {
	cfg     Config
	trans   transport.Transport
	engine  *exec.Engine
	log     *ledger.Ledger
	durable *store.DurableLedger
	sync    *statesync.Manager

	events chan event
	timers struct {
		sync.Mutex
		m map[sm.TimerID]*time.Timer
	}
	start time.Time

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	mu        sync.Mutex
	delivered uint64
	executed  uint64
	durErr    error

	// replies caches recent client replies so a retransmit of an already
	// executed request is answered instead of silently deduplicated — the
	// classic PBFT resend rule. Without it a client whose replies were
	// lost (replica restart, partition, dropped link) retransmits forever
	// into replicas that all drop the request below their dedup floor,
	// and the client's window slot wedges permanently.
	replies struct {
		sync.Mutex
		m map[types.ClientID]*replyRing
	}

	// snapDue defers a cadence-triggered checkpoint to the machine's next
	// delivery boundary (sm.BoundarySyncable machines only; event-loop
	// state, no lock). The cadence fires MID-wave — inside Deliver — where
	// different replicas observe different in-flight frontiers; the machine
	// consumes the flag at the wave boundary (sm.DeferredCheckpointer), the
	// one point where its frontier is a pure function of the delivery
	// prefix and a checkpoint can be attested across replicas.
	snapDue bool

	stallCount atomic.Uint64 // watchdog-detected event-loop stall episodes
}

type event struct {
	from    sm.Source
	msg     types.Message
	timer   sm.TimerID
	isTimer bool
	fn      func()
}

// New creates a replica process. Attach a transport with Attach, then Run.
// With Config.DataDir set it opens the durable store, replays the
// write-ahead log (truncating a torn tail, rejecting corruption), restores
// the application to the journaled head state, and resumes the ledger at
// its pre-crash height — so construction can fail when disk state is
// damaged or inconsistent.
func New(cfg Config) (*Replica, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4096
	}
	cfg.Flight.defaults()
	r := &Replica{
		cfg:     cfg,
		events:  make(chan event, cfg.QueueDepth),
		stopped: make(chan struct{}),
		start:   time.Now(),
	}
	r.timers.m = make(map[sm.TimerID]*time.Timer)
	var journal exec.Journal
	if cfg.DataDir != "" {
		var onCommit func(records int, bytes int64, took time.Duration)
		if cfg.Metrics != nil {
			fsync := cfg.Metrics.WALFsync
			met := cfg.Metrics
			id := uint16(cfg.ID)
			stall := cfg.Flight.FsyncStallThreshold
			onCommit = func(_ int, _ int64, took time.Duration) {
				fsync.Observe(took)
				if stall > 0 && took >= stall {
					// The disk held up a commit point long enough to matter:
					// leave a breadcrumb the post-mortem timeline can line up
					// against demotions and view changes.
					met.Emit(id, flight.SubStore, flight.KFsyncStall, 0, 0, 0, uint64(took))
				}
			}
		}
		dl, err := store.Open(cfg.DataDir, store.Options{
			Sync:               cfg.Journaling.Sync,
			Async:              cfg.Journaling.Async,
			AsyncQueueDepth:    cfg.Journaling.QueueDepth,
			AsyncMaxBatchBytes: cfg.Journaling.MaxBatchBytes,
			AsyncOnCommit:      onCommit,
			PruneWAL:           cfg.Journaling.PruneWAL,
			Failpoints:         cfg.Journaling.Failpoints,
			Identity:           fmt.Sprintf("replica-%d", cfg.ID),
		})
		if err != nil {
			return nil, err
		}
		txns, err := dl.RestoreApp(cfg.App)
		if err != nil {
			dl.Close()
			return nil, err
		}
		r.durable = dl
		r.log = dl.Memory()
		journal = durableJournal{r}
		r.engine = exec.NewEngineOpts(cfg.App, journal, exec.Options{
			Workers: cfg.Exec.Workers, MinParallel: cfg.Exec.MinParallel,
		})
		r.engine.SetMetrics(cfg.Metrics)
		r.engine.Restore(txns)
		r.initStateSync()
		r.registerMetrics()
		return r, nil
	}
	if cfg.Journal {
		l := ledger.New()
		r.log = l
		journal = l
	}
	r.engine = exec.NewEngineOpts(cfg.App, journal, exec.Options{
		Workers: cfg.Exec.Workers, MinParallel: cfg.Exec.MinParallel,
	})
	r.engine.SetMetrics(cfg.Metrics)
	r.registerMetrics()
	return r, nil
}

// registerMetrics publishes the replica's own instruments — executed-work
// counters, ledger head gauges, the durability health gauge, WAL counters,
// and the statesync counters — into the catalog's registry. Every series
// carries a replica="ID" label so replicas of one in-process cluster can
// share a registry without colliding.
func (r *Replica) registerMetrics() {
	reg := r.cfg.Metrics.Registry()
	if reg == nil {
		return
	}
	rl := fmt.Sprintf(`replica="%d"`, r.cfg.ID)
	reg.CounterFunc("rcc_txns_executed_total", rl, "transactions executed by this process", func() float64 {
		return float64(r.Executed())
	})
	reg.GaugeFunc("rcc_durability_healthy", rl, "1 while the durable store is healthy or disabled, 0 once the sticky durability error is set", func() float64 {
		if r.DurabilityErr() != nil {
			return 0
		}
		return 1
	})
	reg.GaugeFunc("rcc_ledger_height", rl, "blocks in the journal", func() float64 {
		if l := r.Ledger(); l != nil {
			return float64(l.Height())
		}
		return 0
	})
	reg.CounterFunc("rcc_loop_stalls_total", rl, "event-loop stall episodes detected by the watchdog", func() float64 {
		return float64(r.stallCount.Load())
	})
	if dl := r.durable; dl != nil {
		reg.CounterFunc("wal_appends_total", rl, "WAL records appended", func() float64 {
			appends, _ := dl.WAL().Stats()
			return float64(appends)
		})
		reg.CounterFunc("wal_fsyncs_total", rl, "WAL commit points (fsyncs) issued", func() float64 {
			_, syncs := dl.WAL().Stats()
			return float64(syncs)
		})
		if ap := dl.Appender(); ap != nil {
			reg.CounterFunc("wal_appender_submitted_total", rl, "records submitted to the async appender", func() float64 {
				submitted, _ := ap.Stats()
				return float64(submitted)
			})
			reg.CounterFunc("wal_appender_batches_total", rl, "async appender commit points issued", func() float64 {
				_, batches := ap.Stats()
				return float64(batches)
			})
		}
	}
	if r.sync != nil {
		r.sync.RegisterMetrics(reg)
	}
}

func (r *Replica) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// flight returns the replica's flight recorder (nil when metrics are off).
func (r *Replica) flight() *flight.Recorder {
	if r.cfg.Metrics == nil {
		return nil
	}
	return r.cfg.Metrics.Flight
}

// emit records one flight event attributed to this replica.
func (r *Replica) emit(sub flight.Sub, kind flight.Kind, seq, detail uint64) {
	r.cfg.Metrics.Emit(uint16(r.cfg.ID), sub, kind, 0, 0, seq, detail)
}

// dumpFlight persists the ring to <DataDir>/flight.bin — the black box a
// post-mortem reads when the process (or its admin endpoint) is gone.
func (r *Replica) dumpFlight() {
	fr := r.flight()
	if fr == nil || r.cfg.DataDir == "" {
		return
	}
	if err := fr.WriteFile(filepath.Join(r.cfg.DataDir, flight.FileName), uint16(r.cfg.ID)); err != nil {
		r.logf("runtime: flight dump failed: %v", err)
	}
}

// initStateSync wires the checkpoint-based state-transfer subsystem when
// configured and the machine supports it. The manager's goroutines start in
// Run (after the transport is attached).
func (r *Replica) initStateSync() {
	if !r.cfg.StateSync.Enabled {
		return
	}
	if _, ok := r.cfg.Machine.(sm.StateSyncable); !ok {
		r.logf("runtime: machine %T does not support state transfer; StateSync disabled", r.cfg.Machine)
		return
	}
	r.sync = statesync.New(statesync.Config{
		Self:          r.cfg.ID,
		N:             r.cfg.Params.N,
		Attest:        r.cfg.Params.FaultDetection(),
		ChunkBytes:    r.cfg.StateSync.ChunkBytes,
		OfferWait:     r.cfg.StateSync.OfferWait,
		RetryInterval: r.cfg.StateSync.Retry,
		SteadyProbe:   r.cfg.StateSync.SteadyProbe,
		Source:        r.cfg.StateSync.Source,
		AttestScheme:  r.attestScheme(),
		Flight:        r.flight(),
	}, statesync.Host{
		Send: func(to types.ReplicaID, m types.Message) {
			if r.trans != nil {
				_ = r.trans.Send(to, m)
			}
		},
		Snapshot: func() *store.Snapshot { return r.durable.LatestSnapshot() },
		Ledger:   func() *ledger.Ledger { return r.durable.Memory() },
		SyncPoint: func() []byte {
			return r.cfg.Machine.(sm.StateSyncable).SyncPoint()
		},
		Install: r.installFromSync,
		OnLoop: func(fn func()) bool {
			select {
			case r.events <- event{fn: fn}:
				return true
			case <-r.stopped:
				return false
			}
		},
		Logf: r.logf,
	})
}

// attestScheme returns the checkpoint-attestation scheme to wire into the
// state-transfer manager: configured AND usable (the machine must serialize
// boundary frontiers, or no checkpoint could ever be attested).
func (r *Replica) attestScheme() *crypto.ThresholdScheme {
	if r.cfg.StateSync.AttestScheme == nil {
		return nil
	}
	if _, ok := r.cfg.Machine.(sm.BoundarySyncable); !ok {
		r.logf("runtime: machine %T cannot serialize boundary frontiers; checkpoint attestation disabled", r.cfg.Machine)
		return nil
	}
	return r.cfg.StateSync.AttestScheme
}

// StateSync returns the state-transfer manager (nil unless Config.StateSync
// armed it).
func (r *Replica) StateSync() *statesync.Manager { return r.sync }

// installFromSync applies a verified state transfer. Runs on the event
// loop: the application and machine are single-threaded by contract, and no
// execution can interleave with the store swap.
func (r *Replica) installFromSync(res *statesync.Result) error {
	if err := r.DurabilityErr(); err != nil {
		// The disk already failed this process; installing over it would
		// just hide the fault. Operators restart the replica instead.
		return err
	}
	local := r.durable.Memory().Height()
	if res.Target <= local {
		return nil // consensus caught this replica up while the fetch ran
	}
	// Reject a malformed or incompatible machine frontier BEFORE the store
	// commits anything: at this point the whole transfer is still cleanly
	// retryable, whereas a post-commit failure tears the replica.
	if len(res.SyncPoint) > 0 {
		if err := r.cfg.Machine.(sm.StateSyncable).ValidateSyncPoint(res.SyncPoint); err != nil {
			return err
		}
	}
	if res.Snapshot != nil {
		// Full install: rebase the store, then rebuild the application
		// from the installed snapshot + suffix (with per-block digest
		// audits, exactly like a restart).
		if err := r.durable.InstallState(res.Snapshot, res.Blocks); err != nil {
			return err
		}
		txns, err := r.durable.RestoreApp(r.cfg.App)
		if err != nil {
			// The store committed the new state but the application could
			// not be rebuilt onto it: the replica is torn. Poison it
			// (DurabilityErr) so it stops acknowledging and operators
			// restart it — a reopen re-runs this restore from the durable
			// install — instead of running on and reporting itself synced.
			r.setDurErr(err)
			return err
		}
		r.engine.Restore(txns)
	} else {
		// Lag-only install: the local prefix is intact, the fetched blocks
		// extend it; execute them against the live application. Blocks
		// consensus delivered while the fetch ran are trimmed off the
		// front (they are the same chain — InstallBlocks re-checks the
		// hash link onto the local head).
		blocks := res.Blocks
		for len(blocks) > 0 && blocks[0].Height < local {
			blocks = blocks[1:]
		}
		if len(blocks) == 0 {
			return nil
		}
		if blocks[0].Height != local {
			return fmt.Errorf("runtime: catch-up range starts at %d, local height is %d",
				blocks[0].Height, local)
		}
		if err := r.durable.InstallBlocks(blocks); err != nil {
			return err
		}
		for _, blk := range blocks {
			for i := range blk.Batch.Txns {
				r.cfg.App.Execute(blk.Batch.Txns[i])
			}
			if r.cfg.App.StateDigest() != blk.StateHash {
				// The blocks are journaled but the application diverged
				// applying them: torn replica, same poisoning rationale as
				// the snapshot path.
				err := fmt.Errorf("runtime: catch-up replay diverged at height %d", blk.Height)
				r.setDurErr(err)
				return err
			}
		}
		r.engine.Restore(r.durable.Memory().TxnCount())
	}
	// The machine rejoins at the attested frontier; rounds it committed
	// while the transfer ran deliver (and execute) from here.
	if len(res.SyncPoint) > 0 {
		if err := r.cfg.Machine.(sm.StateSyncable).InstallSyncPoint(res.SyncPoint); err != nil {
			// Store and application are at the target but the machine is
			// not: poison rather than run split-brained. A restart
			// re-derives the machine frontier from a fresh sync.
			r.setDurErr(err)
			return err
		}
	}
	return nil
}

// durableJournal routes the engine's block appends through the durable
// store. A WAL failure means the in-memory chain is ahead of disk; the
// error sticks (DurabilityErr) so operators stop the replica instead of
// running with a silent durability gap.
type durableJournal struct{ r *Replica }

var _ exec.AsyncJournal = durableJournal{}

func (j durableJournal) Append(batch *types.Batch, proof ledger.Proof, state types.Digest) *ledger.Block {
	blk, err := j.r.durable.Append(batch, proof, state)
	if err != nil {
		j.r.setDurErr(err)
	}
	return blk
}

// AppendAsync implements exec.AsyncJournal over the store's pipelined
// commit path: the completion callback runs on the WAL committer goroutine
// once the block's record is durable (carrying nil) or the journal has
// failed (sticky error, also recorded for DurabilityErr).
func (j durableJournal) AppendAsync(batch *types.Batch, proof ledger.Proof, state types.Digest, done func(err error)) *ledger.Block {
	return j.r.durable.AppendAsync(batch, proof, state, func(_ uint64, err error) {
		if err != nil {
			j.r.setDurErr(err)
		}
		done(err)
	})
}

func (r *Replica) setDurErr(err error) {
	r.mu.Lock()
	first := r.durErr == nil
	if first {
		r.durErr = err
	}
	r.mu.Unlock()
	if !first {
		return
	}
	// Poisoning is terminal for this process: record the event first so it
	// is part of the dump, then persist the ring synchronously — the
	// periodic mirror may never get another turn.
	r.emit(flight.SubStore, flight.KDurabilityPoison, 0, 0)
	r.dumpFlight()
}

// DurabilityErr returns the first journaling or checkpointing failure (nil
// while the durable store is healthy or disabled).
func (r *Replica) DurabilityErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.durErr
}

// Attach wires the transport (must precede Run). When metrics are live and
// the transport is TCP, its counters and per-link queue gauges join the
// registry.
func (r *Replica) Attach(t transport.Transport) {
	r.trans = t
	reg := r.cfg.Metrics.Registry()
	if reg == nil {
		return
	}
	tcp, ok := t.(*transport.TCP)
	if !ok {
		return
	}
	rl := fmt.Sprintf(`replica="%d"`, r.cfg.ID)
	counters := []struct {
		name, help string
		get        func(transport.TCPStats) uint64
	}{
		{"transport_msgs_sent_total", "messages handed to the framing layer", func(s transport.TCPStats) uint64 { return s.MsgsSent }},
		{"transport_frames_sent_total", "coalesced frames written to sockets", func(s transport.TCPStats) uint64 { return s.BatchesSent }},
		{"transport_peer_dropped_total", "replica-bound messages dropped on a down link", func(s transport.TCPStats) uint64 { return s.PeerDropped }},
		{"transport_client_dropped_total", "client-bound messages dropped on overflow", func(s transport.TCPStats) uint64 { return s.ClientDropped }},
		{"transport_reconnects_total", "peer link redials", func(s transport.TCPStats) uint64 { return s.Reconnects }},
		{"transport_bad_header_total", "frames rejected for a malformed header", func(s transport.TCPStats) uint64 { return s.BadHeader }},
		{"transport_decode_errors_total", "messages that failed decoding", func(s transport.TCPStats) uint64 { return s.DecodeErrs }},
		{"transport_encode_errors_total", "messages that failed encoding", func(s transport.TCPStats) uint64 { return s.EncodeErrs }},
		{"transport_auth_rejects_total", "records dropped for a bad authenticator tag", func(s transport.TCPStats) uint64 { return s.AuthRejects }},
		{"transport_auth_demotions_total", "inbound links closed after consecutive auth failures", func(s transport.TCPStats) uint64 { return s.AuthDemotions }},
		{"transport_verified_frames_total", "frames verified by the verify worker pool", func(s transport.TCPStats) uint64 { return s.VerifiedFrames }},
		{"transport_digest_cache_hits_total", "verified-digest cache hits (re-verification skipped)", func(s transport.TCPStats) uint64 { return s.DigestHits }},
		{"transport_digest_cache_misses_total", "verified-digest cache misses", func(s transport.TCPStats) uint64 { return s.DigestMisses }},
	}
	for _, c := range counters {
		get := c.get
		reg.CounterFunc(c.name, rl, c.help, func() float64 { return float64(get(tcp.Stats())) })
	}
	reg.GaugeFunc("transport_peer_queue_depth", rl, "messages waiting across outbound replica links", func() float64 {
		total := 0
		for _, l := range tcp.LinkStats() {
			total += l.Queued
		}
		return float64(total)
	})
	reg.GaugeFunc("transport_peers_connected", rl, "outbound replica links currently connected", func() float64 {
		n := 0
		for _, l := range tcp.LinkStats() {
			if l.Connected {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("transport_client_links", rl, "connected client links", func() float64 {
		links, _ := tcp.ClientLinks()
		return float64(links)
	})
	reg.GaugeFunc("transport_client_queue_depth", rl, "messages waiting toward clients", func() float64 {
		_, queued := tcp.ClientLinks()
		return float64(queued)
	})
}

// Ledger returns the journal (nil unless Config.Journal or Config.DataDir).
// Durable replicas resolve it through the store: a state-transfer install
// replaces the ledger object, and this accessor always names the live one.
func (r *Replica) Ledger() *ledger.Ledger {
	if r.durable != nil {
		return r.durable.Memory()
	}
	return r.log
}

// Durable returns the durable store (nil unless Config.DataDir).
func (r *Replica) Durable() *store.DurableLedger { return r.durable }

// StateDigest returns the application's state digest. The application is
// single-threaded by contract: call this only on a replica that is not
// running, or from inside Inspect.
func (r *Replica) StateDigest() types.Digest { return r.engine.StateDigest() }

// Executed returns the number of transactions executed by this process
// (restored transactions are not re-counted; see the engine's Executed for
// the chain total).
func (r *Replica) Executed() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.executed
}

// DeliverReplica implements transport.Endpoint.
func (r *Replica) DeliverReplica(from types.ReplicaID, m types.Message) {
	select {
	case r.events <- event{from: sm.FromReplica(from), msg: m}:
	case <-r.stopped:
	}
}

// DeliverClient implements transport.Endpoint.
func (r *Replica) DeliverClient(from types.ClientID, m types.Message) {
	// A retransmit of a request this replica already executed and answered
	// is resent its cached reply instead of entering the event loop: the
	// machine would only drop it below the dedup floor, leaving a client
	// that lost the original reply stuck retransmitting forever.
	if req, ok := m.(*types.ClientRequest); ok && r.cfg.ReplyToClients {
		if reply := r.cachedReply(req.Tx.Client, req.Tx.Seq); reply != nil {
			if r.trans != nil {
				_ = r.trans.SendClient(reply.Client, reply)
			}
			return
		}
	}
	select {
	case r.events <- event{from: sm.FromClient(from), msg: m}:
	case <-r.stopped:
	}
}

// Run starts the event loop (and, when configured, the state-transfer
// manager — a freshly started replica probes its peers before assuming its
// disk is current). It returns immediately; Stop shuts down.
func (r *Replica) Run() {
	r.wg.Add(1)
	go r.loop()
	if th := r.cfg.Flight.StallThreshold; th > 0 && r.cfg.Metrics != nil {
		r.wg.Add(1)
		go r.watchdog(th)
	}
	if iv := r.cfg.Flight.MirrorInterval; iv > 0 && r.flight() != nil && r.cfg.DataDir != "" {
		r.wg.Add(1)
		go r.mirrorFlight(iv)
	}
	if r.sync != nil {
		r.sync.Start()
	}
}

// watchdog detects a wedged event loop: it enqueues a probe event and
// measures how long the loop takes to service it. A probe outstanding past
// the threshold records one loop_stalled flight event (detail = observed
// delay in nanoseconds) and one rcc_loop_stalls_total increment; the episode
// is not re-reported until the probe finally drains, so a 10-second wedge is
// one event, not twenty.
func (r *Replica) watchdog(threshold time.Duration) {
	defer r.wg.Done()
	interval := threshold / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	ack := make(chan struct{}, 1)
	probe := event{fn: func() {
		select {
		case ack <- struct{}{}:
		default:
		}
	}}
	var sentAt time.Time // zero: no probe outstanding
	enqueued := false    // probe handed to the queue (false while it is full)
	reported := false
	for {
		select {
		case <-r.stopped:
			return
		case <-tick.C:
		}
		select {
		case <-ack:
			sentAt, enqueued, reported = time.Time{}, false, false
		default:
		}
		if sentAt.IsZero() {
			sentAt = time.Now()
		}
		if !enqueued {
			// A full queue is itself the backlog being measured: keep the
			// clock running from the first attempt and retry the enqueue.
			select {
			case r.events <- probe:
				enqueued = true
			default:
			}
		}
		if el := time.Since(sentAt); el >= threshold && !reported {
			reported = true
			r.stallCount.Add(1)
			r.emit(flight.SubRuntime, flight.KLoopStall, 0, uint64(el))
		}
	}
}

// mirrorFlight periodically persists the ring to <DataDir>/flight.bin so an
// abrupt death (kill -9, OOM) still leaves a recent event prefix on disk.
// Quiet periods skip the write; a clean stop takes one final mirror.
func (r *Replica) mirrorFlight(interval time.Duration) {
	defer r.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	fr := r.flight()
	var last uint64
	for {
		select {
		case <-r.stopped:
			r.dumpFlight()
			return
		case <-tick.C:
			if h := fr.Head(); h != last {
				last = h
				r.dumpFlight()
			}
		}
	}
}

func (r *Replica) loop() {
	defer r.wg.Done()
	env := &replicaEnv{r: r}
	r.cfg.Machine.Start(env)
	for {
		select {
		case <-r.stopped:
			return
		case e := <-r.events:
			switch {
			case e.fn != nil:
				e.fn()
			case e.isTimer:
				r.cfg.Machine.OnTimer(e.timer)
			default:
				// State-transfer messages are the runtime's, not the
				// machine's: probes answer with an offer built here (the
				// machine frontier and ledger head read in the same
				// instant), serving and responses hand off to the
				// manager's goroutines.
				if r.sync != nil && r.sync.HandleMessage(e.from.Replica, e.from.IsClient, e.msg) {
					break
				}
				r.cfg.Machine.OnMessage(e.from, e.msg)
			}
		}
	}
}

// Inspect runs f on the replica's event loop and waits for it to return —
// the safe way to read machine state (machines are single-threaded by
// contract). Returns false if the replica stopped before f could run.
func (r *Replica) Inspect(f func()) bool {
	done := make(chan struct{})
	select {
	case r.events <- event{fn: func() { f(); close(done) }}:
	case <-r.stopped:
		return false
	}
	select {
	case <-done:
		return true
	case <-r.stopped:
		return false
	}
}

// Stop shuts the replica down and waits for the loop to exit.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		close(r.stopped)
		r.timers.Lock()
		for _, t := range r.timers.m {
			t.Stop()
		}
		r.timers.Unlock()
	})
	r.wg.Wait()
	// The event loop has exited, so no batch is in flight: the execution
	// engine's worker pool can wind down.
	r.engine.Close()
	// The state-transfer manager stops before the store closes: an
	// in-flight transfer aborts (installs are atomic, nothing partial
	// remains) and no serve request can touch a closing store.
	if r.sync != nil {
		r.sync.Stop()
	}
	// Drain the durable store BEFORE closing the transport: in async mode
	// Close completes every in-flight block's commit point and its
	// durability callback enqueues the deferred client acks onto the
	// transport's per-client queues, which the transport's Close then
	// flushes (bounded by its drain timeout).
	if r.durable != nil {
		if err := r.durable.Close(); err != nil {
			r.setDurErr(err)
		}
	}
	if r.trans != nil {
		r.trans.Close()
	}
}

// Kill shuts the replica down the way kill -9 would: the event loop stops,
// but the durable store closes abruptly — in-flight async appends are
// dropped without their final fsync (and an armed torn-write failpoint
// fires), deferred client acks never flush — so only state the WAL already
// made durable survives into the next incarnation. Peers observe exactly
// what a process death looks like: sockets torn down mid-stream.
func (r *Replica) Kill() {
	r.stopOnce.Do(func() {
		close(r.stopped)
		r.timers.Lock()
		for _, t := range r.timers.m {
			t.Stop()
		}
		r.timers.Unlock()
	})
	r.wg.Wait()
	r.engine.Close()
	if r.sync != nil {
		r.sync.Stop()
	}
	if r.durable != nil {
		r.durable.CloseAbrupt()
	}
	if r.trans != nil {
		r.trans.Close()
	}
}

// saveSnapshot persists an application checkpoint at the current chain
// head. Must run on the event loop (the application is single-threaded).
func (r *Replica) saveSnapshot() {
	if r.durable == nil {
		return
	}
	// After a journaling failure the in-memory chain runs ahead of disk;
	// a checkpoint taken now would claim heights the WAL never stored and
	// block the next restart. Stop checkpointing once durability is gone.
	if r.DurabilityErr() != nil {
		return
	}
	snapper, ok := r.cfg.App.(store.Snapshotter)
	if !ok {
		return
	}
	if err := r.durable.Snapshot(snapper.Snapshot()); err != nil {
		r.setDurErr(err)
		return
	}
	r.emit(flight.SubStore, flight.KSnapshotCommit, r.durable.Memory().Height(), 0)
	// Attest the fresh checkpoint at its delivery boundary: when the machine
	// can serialize a boundary frontier, every replica checkpointing this
	// height signs identical bytes, and f+1 shares make the snapshot a
	// single-offer state-transfer target even under load. saveSnapshot runs
	// on the event loop for boundary-syncable machines only at the boundary
	// (CheckpointDue), so the frontier read here IS the boundary frontier.
	if r.sync != nil {
		if b, ok := r.cfg.Machine.(sm.BoundarySyncable); ok {
			if bsp := b.BoundarySyncPoint(); bsp != nil {
				r.sync.AttestCheckpoint(r.durable.LatestSnapshot(), bsp)
			}
		}
	}
}

// replicaEnv implements sm.Env on top of the process.
type replicaEnv struct {
	r *Replica
}

var _ sm.Env = (*replicaEnv)(nil)

func (e *replicaEnv) ID() types.ReplicaID   { return e.r.cfg.ID }
func (e *replicaEnv) Params() quorum.Params { return e.r.cfg.Params }

func (e *replicaEnv) Send(to types.ReplicaID, m types.Message) {
	if to == e.r.cfg.ID {
		// Self-delivery loops through the queue like any other message,
		// preserving the machine's sequential contract.
		e.r.DeliverReplica(to, m)
		return
	}
	if e.r.trans != nil {
		_ = e.r.trans.Send(to, m) // unreachable peers are the timeout paths' job
	}
}

func (e *replicaEnv) Broadcast(m types.Message) {
	for i := 0; i < e.r.cfg.Params.N; i++ {
		e.Send(types.ReplicaID(i), m)
	}
}

func (e *replicaEnv) SendClient(c types.ClientID, m types.Message) {
	if e.r.trans != nil {
		_ = e.r.trans.SendClient(c, m)
	}
}

// Deliver executes the decision's batch in order, journals it, and answers
// the clients. With Config.Journaling.Async the journal append is pipelined:
// execution returns immediately and the client replies wait for the block's
// WAL record to be reported durable (per-height ack deferral), so no client
// ever holds an acknowledgement the disk does not.
func (e *replicaEnv) Deliver(d sm.Decision) {
	r := e.r
	r.mu.Lock()
	r.delivered++
	r.mu.Unlock()
	if d.Batch == nil || d.Batch.IsNoOp() {
		// No-op fillers (§III-E) keep rounds complete but carry no client
		// work: nothing to execute, journal, or answer.
		return
	}
	proof := ledger.Proof{
		Instance: d.Instance, Round: d.Round, View: d.View,
		Digest: d.Digest, Signers: d.Signers,
	}
	met := r.cfg.Metrics
	var delivAt time.Time
	if met != nil {
		delivAt = time.Now()
	}
	var res exec.Result
	if r.cfg.Journaling.Async && r.durable != nil {
		// The callback runs on the WAL committer goroutine; d and the
		// completion Result are read-only there, and the transports are
		// safe for concurrent use. SendClient is enqueue-only (bounded
		// per-client queue, drop on overflow), so acking directly from
		// the committer can never wait on a client's socket — a dropped
		// reply only un-acks a durable block and the client collects its
		// f+1 replies elsewhere or retries.
		res = r.engine.ExecuteBatchAsync(d.Batch, proof, func(nres exec.Result, err error) {
			if err != nil {
				// setDurErr already ran (durableJournal); stay silent and
				// let clients collect f+1 replies from healthy replicas.
				return
			}
			if met.Tracing() {
				traceBatch(met, d.Batch, obs.PointDurable)
			}
			e.ackClients(d, nres)
			if met != nil {
				met.ObserveStage(obs.StageAck, time.Since(delivAt))
			}
		})
	} else {
		res = r.engine.ExecuteBatch(d.Batch, proof)
	}
	r.mu.Lock()
	r.executed += uint64(res.TxnExecuted)
	r.mu.Unlock()
	if met.Tracing() {
		traceBatch(met, d.Batch, obs.PointExecute)
	}
	if r.cfg.Journaling.SnapshotEvery > 0 && res.Block != nil &&
		(res.Block.Height+1)%r.cfg.Journaling.SnapshotEvery == 0 {
		if _, ok := r.cfg.Machine.(sm.BoundarySyncable); ok {
			// Heights land mid-wave; a boundary-syncable machine drains the
			// flag at the end of the wave (CheckpointDue → PersistCheckpoint)
			// so the checkpoint lands where the frontier is deterministic.
			r.snapDue = true
		} else {
			r.saveSnapshot()
		}
	}
	if r.cfg.Journaling.Async && r.durable != nil {
		return // replies ride on the durability callback
	}
	e.ackClients(d, res)
	if met != nil {
		met.ObserveStage(obs.StageAck, time.Since(delivAt))
	}
}

// traceBatch stamps one lifecycle point for every sampled transaction of a
// batch.
func traceBatch(met *obs.NodeMetrics, batch *types.Batch, p obs.TracePoint) {
	for i := range batch.Txns {
		tx := &batch.Txns[i]
		if !tx.IsNoOp() {
			met.Trace(uint64(tx.Client), tx.Seq, p)
		}
	}
}

// replyCacheWindow bounds the per-client reply cache. It needs to cover a
// client's pipeline window (so every in-flight seq stays answerable);
// clients here run windows of a few transactions, so 16 is ample.
const replyCacheWindow = 16

// replyRing holds a client's most recent replies, keyed by sequence.
type replyRing struct {
	max uint64
	m   map[uint64]*types.ClientReply
}

// cacheReply remembers a sent reply for retransmit resends, evicting
// replies that fell out of the cache window.
func (r *Replica) cacheReply(reply *types.ClientReply) {
	r.replies.Lock()
	defer r.replies.Unlock()
	if r.replies.m == nil {
		r.replies.m = make(map[types.ClientID]*replyRing)
	}
	ring := r.replies.m[reply.Client]
	if ring == nil {
		ring = &replyRing{m: make(map[uint64]*types.ClientReply)}
		r.replies.m[reply.Client] = ring
	}
	ring.m[reply.Seq] = reply
	if reply.Seq > ring.max {
		ring.max = reply.Seq
		for s := range ring.m {
			if s+replyCacheWindow <= ring.max {
				delete(ring.m, s)
			}
		}
	}
}

// cachedReply returns the remembered reply for (c, seq), or nil.
func (r *Replica) cachedReply(c types.ClientID, seq uint64) *types.ClientReply {
	r.replies.Lock()
	defer r.replies.Unlock()
	ring := r.replies.m[c]
	if ring == nil {
		return nil
	}
	return ring.m[seq]
}

// ackClients answers the clients covered by a decided, executed, durable
// batch: one reply per executed (client, seq) pair — not just each
// client's newest, because when one batch carries two requests of the same
// client the older one still has a waiting client slot that completes only
// on f+1 replies naming its exact sequence. f+1 identical replies prove
// the outcome. Safe off the event loop — it reads only immutable decision
// state.
func (e *replicaEnv) ackClients(d sm.Decision, res exec.Result) {
	r := e.r
	if !r.cfg.ReplyToClients {
		return
	}
	// A durable replica whose journal failed must not acknowledge
	// transactions it can no longer persist: stay silent and let clients
	// collect their f+1 replies from healthy replicas.
	if r.DurabilityErr() != nil {
		return
	}
	type ackKey struct {
		c   types.ClientID
		seq uint64
	}
	met := r.cfg.Metrics
	sent := make(map[ackKey]struct{}, len(d.Batch.Txns))
	for i := range d.Batch.Txns {
		tx := &d.Batch.Txns[i]
		if tx.IsNoOp() {
			continue
		}
		k := ackKey{tx.Client, tx.Seq}
		if _, dup := sent[k]; dup {
			continue
		}
		sent[k] = struct{}{}
		reply := &types.ClientReply{
			Replica: r.cfg.ID, Client: tx.Client, Seq: tx.Seq,
			Round: d.Round, Result: res.ResultHash, Count: d.Batch.Len(),
		}
		reply.Inst = d.Instance
		r.cacheReply(reply)
		e.SendClient(tx.Client, reply)
		if met != nil {
			met.Acks.Inc()
			met.Trace(uint64(tx.Client), tx.Seq, obs.PointAck)
		}
	}
}

func (e *replicaEnv) SetTimer(id sm.TimerID, d time.Duration) {
	r := e.r
	r.timers.Lock()
	defer r.timers.Unlock()
	if t, ok := r.timers.m[id]; ok {
		t.Stop()
	}
	r.timers.m[id] = time.AfterFunc(d, func() {
		select {
		case r.events <- event{timer: id, isTimer: true}:
		case <-r.stopped:
		}
	})
}

func (e *replicaEnv) CancelTimer(id sm.TimerID) {
	r := e.r
	r.timers.Lock()
	defer r.timers.Unlock()
	if t, ok := r.timers.m[id]; ok {
		t.Stop()
		delete(r.timers.m, id)
	}
}

func (e *replicaEnv) Now() time.Duration { return time.Since(e.r.start) }

func (e *replicaEnv) Suspect(inst types.InstanceID, round types.Round) {
	// Standalone machines route suspicion internally; RCC replicas never
	// surface it to the runtime. Nothing to do.
}

// PersistCheckpoint implements sm.CheckpointSink: RCC's dynamic per-need
// checkpoints (§III-D) double as durable recovery points. Runs on the event
// loop (machines emit effects from their own loop), so touching the
// application is safe.
func (e *replicaEnv) PersistCheckpoint() { e.r.saveSnapshot() }

// CheckpointDue implements sm.DeferredCheckpointer: it consumes the
// cadence flag Deliver set mid-wave, so a boundary-syncable machine takes
// exactly one checkpoint per trigger, at its next delivery boundary.
func (e *replicaEnv) CheckpointDue() bool {
	due := e.r.snapDue
	e.r.snapDue = false
	return due
}

func (e *replicaEnv) Logf(format string, args ...any) { e.r.logf(format, args...) }

// RequestStateSync implements sm.StateSyncRequester: machines report gaps
// that in-protocol catch-up cannot bridge; the manager coalesces the kicks.
func (e *replicaEnv) RequestStateSync() {
	if e.r.sync != nil {
		e.r.sync.Kick()
	}
}

// ---------------------------------------------------------------------------
// Client process
// ---------------------------------------------------------------------------

// ClientProc hosts an sm.ClientMachine on goroutines and a transport.
type ClientProc struct {
	id      types.ClientID
	params  quorum.Params
	machine sm.ClientMachine
	trans   transport.Transport

	events chan event
	timers struct {
		sync.Mutex
		m map[sm.TimerID]*time.Timer
	}
	start    time.Time
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// NewClient creates a client process.
func NewClient(id types.ClientID, params quorum.Params, m sm.ClientMachine) *ClientProc {
	c := &ClientProc{
		id: id, params: params, machine: m,
		events:  make(chan event, 1024),
		stopped: make(chan struct{}),
		start:   time.Now(),
	}
	c.timers.m = make(map[sm.TimerID]*time.Timer)
	return c
}

// Attach wires the transport (must precede Run).
func (c *ClientProc) Attach(t transport.Transport) { c.trans = t }

// DeliverReplica implements transport.Endpoint.
func (c *ClientProc) DeliverReplica(from types.ReplicaID, m types.Message) {
	select {
	case c.events <- event{from: sm.FromReplica(from), msg: m}:
	case <-c.stopped:
	}
}

// DeliverClient implements transport.Endpoint (unused for clients).
func (c *ClientProc) DeliverClient(types.ClientID, types.Message) {}

// Run starts the client loop.
func (c *ClientProc) Run() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.machine.Start(&clientEnv{c: c})
		for {
			select {
			case <-c.stopped:
				return
			case e := <-c.events:
				if e.isTimer {
					c.machine.OnTimer(e.timer)
				} else {
					c.machine.OnMessage(e.from.Replica, e.msg)
				}
			}
		}
	}()
}

// Stop shuts the client down.
func (c *ClientProc) Stop() {
	c.stopOnce.Do(func() {
		close(c.stopped)
		c.timers.Lock()
		for _, t := range c.timers.m {
			t.Stop()
		}
		c.timers.Unlock()
	})
	c.wg.Wait()
	if c.trans != nil {
		c.trans.Close()
	}
}

type clientEnv struct{ c *ClientProc }

var _ sm.ClientEnv = (*clientEnv)(nil)

func (e *clientEnv) Client() types.ClientID { return e.c.id }
func (e *clientEnv) Params() quorum.Params  { return e.c.params }

func (e *clientEnv) Send(to types.ReplicaID, m types.Message) {
	if e.c.trans != nil {
		_ = e.c.trans.Send(to, m)
	}
}

func (e *clientEnv) Broadcast(m types.Message) {
	for i := 0; i < e.c.params.N; i++ {
		e.Send(types.ReplicaID(i), m)
	}
}

func (e *clientEnv) SetTimer(id sm.TimerID, d time.Duration) {
	c := e.c
	c.timers.Lock()
	defer c.timers.Unlock()
	if t, ok := c.timers.m[id]; ok {
		t.Stop()
	}
	c.timers.m[id] = time.AfterFunc(d, func() {
		select {
		case c.events <- event{timer: id, isTimer: true}:
		case <-c.stopped:
		}
	})
}

func (e *clientEnv) CancelTimer(id sm.TimerID) {
	c := e.c
	c.timers.Lock()
	defer c.timers.Unlock()
	if t, ok := c.timers.m[id]; ok {
		t.Stop()
		delete(c.timers.m, id)
	}
}

func (e *clientEnv) Now() time.Duration  { return time.Since(e.c.start) }
func (e *clientEnv) Logf(string, ...any) {}
