package runtime

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// syncCluster boots one durable, state-sync-enabled replica of a 4-node TCP
// cluster. Listen is the fixed address to bind (so a restarted replica is
// reachable at the address its peers already know).
func syncReplica(t *testing.T, base string, id types.ReplicaID, params quorum.Params,
	listen string, peers map[types.ReplicaID]string, snapshotEvery uint64) (*Replica, *transport.TCP) {
	t.Helper()
	rep, err := New(Config{
		ID:     id,
		Params: params,
		Machine: pbft.New(pbft.Config{
			BatchSize: 1, Window: 8,
			// Keep the cluster calm while a replica is down or syncing:
			// failure detection is not under test here.
			ProgressTimeout: 20 * time.Second,
		}),
		App:     ycsb.NewStore(1000),
		DataDir: filepath.Join(base, fmt.Sprintf("replica-%d", id)),
		Journaling: JournalOptions{
			Async:         true,
			SnapshotEvery: snapshotEvery,
		},
		ReplyToClients: true,
		StateSync: StateSyncOptions{
			Enabled:     true,
			OfferWait:   150 * time.Millisecond,
			Retry:       300 * time.Millisecond,
			SteadyProbe: 500 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("replica %d: %v", id, err)
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{Self: id, Listen: listen}, rep)
	if err != nil {
		t.Fatalf("replica %d transport: %v", id, err)
	}
	if peers != nil {
		tcp.SetPeers(peers)
	}
	rep.Attach(tcp)
	return rep, tcp
}

func bootSyncCluster(t *testing.T, base string, snapshotEvery uint64) ([]*Replica, map[types.ReplicaID]string, quorum.Params) {
	t.Helper()
	const n = 4
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	tcps := make([]*transport.TCP, n)
	peers := make(map[types.ReplicaID]string)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		reps[i], tcps[i] = syncReplica(t, base, id, params, "127.0.0.1:0", nil, snapshotEvery)
		peers[id] = tcps[i].Addr()
	}
	for i := 0; i < n; i++ {
		tcps[i].SetPeers(peers)
		reps[i].Run()
	}
	return reps, peers, params
}

// TestStateSyncWipedReplicaOverTCP is the tentpole acceptance test: a
// 4-node TCP cluster decides real transactions, one replica's data dir is
// DELETED, the replica restarts empty, completes a snapshot + block-range
// state transfer over real sockets, and then participates in new decisions
// at the head — proven by stopping a second replica so no quorum can form
// without the recovered one's votes. (The kill-9-mid-transfer half of the
// contract is pinned at the store layer: TestInstallCrashBeforeCommitKeeps
// OldState / TestInstallCrashAfterCommitRollsForward in internal/store.)
func TestStateSyncWipedReplicaOverTCP(t *testing.T) {
	base := t.TempDir()
	// 14 txns with a snapshot every 4 blocks: the latest checkpoint sits at
	// height 12, so the transfer must ship the snapshot AND a 2-block
	// suffix.
	const txns = 14
	reps, peers, params := bootSyncCluster(t, base, 4)

	c := tcpClient(t, peers, params, 1, "", txns)
	waitFor(t, 30*time.Second, func() bool { return len(c.Completions()) == txns })
	for i, r := range reps {
		waitFor(t, 10*time.Second, func() bool { return r.Ledger().Height() == txns })
		if err := r.DurabilityErr(); err != nil {
			t.Fatalf("replica %d durability: %v", i, err)
		}
	}
	head := reps[0].Ledger().HeadHash()

	// Wipe replica 3: stop it, delete its entire data dir, restart empty
	// at the same address.
	reps[3].Stop()
	if err := os.RemoveAll(filepath.Join(base, "replica-3")); err != nil {
		t.Fatal(err)
	}
	rep3, _ := syncReplica(t, base, 3, params, peers[3], peers, 4)
	rep3.Run()
	t.Cleanup(rep3.Stop)

	// The wiped replica must reach the cluster head via state transfer:
	// snapshot chunks plus the block suffix, all over real sockets.
	waitFor(t, 30*time.Second, func() bool {
		return rep3.Ledger().Height() == txns && rep3.StateSync().Synced()
	})
	if got := rep3.Ledger().HeadHash(); got != head {
		t.Fatalf("synced head %v, want %v", got, head)
	}
	if err := rep3.Ledger().Verify(); err != nil {
		t.Fatalf("synced chain fails audit: %v", err)
	}
	st := rep3.StateSync().Stats()
	if st.Installs == 0 || st.InstalledSnaps == 0 {
		t.Fatalf("wiped replica did not install a snapshot transfer: %+v", st)
	}
	if st.ChunksFetched == 0 || st.BlocksFetched == 0 {
		t.Fatalf("transfer moved no data: %+v", st)
	}

	// Participation proof: with replica 1 stopped, a quorum (3 of 4) needs
	// the recovered replica's votes for every new decision.
	reps[1].Stop()
	c2 := tcpClient(t, peers, params, 2, "", 6)
	waitFor(t, 30*time.Second, func() bool { return len(c2.Completions()) == 6 })
	waitFor(t, 10*time.Second, func() bool { return rep3.Ledger().Height() == txns+6 })
	if err := rep3.DurabilityErr(); err != nil {
		t.Fatalf("recovered replica durability: %v", err)
	}
	if rep3.Ledger().HeadHash() != reps[0].Ledger().HeadHash() {
		t.Fatal("recovered replica diverged after rejoining")
	}

	// The wiped replica's store is rebased: it no longer materializes the
	// blocks the snapshot summarized, but serves and extends the chain.
	if baseH := rep3.Ledger().Base(); baseH == 0 {
		t.Fatal("wiped replica should have a rebased ledger (snapshot install)")
	}
}

// TestStateSyncLaggingReplicaOverTCP is the lag-behind variant: the replica
// keeps its disk, misses a stretch of decisions, and catches up with a
// block-range-only transfer (no snapshot install) before voting again.
func TestStateSyncLaggingReplicaOverTCP(t *testing.T) {
	base := t.TempDir()
	// SnapshotEvery=0: no checkpoints exist, so the transfer MUST take the
	// range-only path.
	reps, peers, params := bootSyncCluster(t, base, 0)

	c := tcpClient(t, peers, params, 1, "", 6)
	waitFor(t, 30*time.Second, func() bool { return len(c.Completions()) == 6 })
	for _, r := range reps {
		waitFor(t, 10*time.Second, func() bool { return r.Ledger().Height() == 6 })
	}

	// Replica 3 goes down but keeps its disk; the cluster decides on.
	reps[3].Stop()
	c2 := tcpClient(t, peers, params, 2, "", 8)
	waitFor(t, 30*time.Second, func() bool { return len(c2.Completions()) == 8 })

	rep3, _ := syncReplica(t, base, 3, params, peers[3], peers, 0)
	rep3.Run()
	t.Cleanup(rep3.Stop)

	waitFor(t, 30*time.Second, func() bool {
		return rep3.Ledger().Height() == 14 && rep3.StateSync().Synced()
	})
	st := rep3.StateSync().Stats()
	if st.Installs == 0 {
		t.Fatalf("lagging replica installed nothing: %+v", st)
	}
	if st.InstalledSnaps != 0 {
		t.Fatalf("lag-only catch-up should not ship a snapshot: %+v", st)
	}
	if st.BlocksFetched < 8 {
		t.Fatalf("expected >=8 blocks fetched, got %+v", st)
	}
	if rep3.Ledger().Base() != 0 {
		t.Fatal("lag-only catch-up must not rebase the ledger")
	}
	if rep3.Ledger().HeadHash() != reps[0].Ledger().HeadHash() {
		t.Fatal("lagging replica diverged after catch-up")
	}

	// And it votes: stop replica 1, new decisions need rep3.
	reps[1].Stop()
	c3 := tcpClient(t, peers, params, 3, "", 4)
	waitFor(t, 30*time.Second, func() bool { return len(c3.Completions()) == 4 })
	waitFor(t, 10*time.Second, func() bool { return rep3.Ledger().Height() == 18 })
}

var _ sm.StateSyncable = (*pbft.Instance)(nil) // the TCP tests rely on it
