package runtime

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// durableCluster builds an n-replica in-memory deployment whose replicas
// journal through the durable store under base/replica-i.
func durableCluster(t *testing.T, n int, base string, snapEvery uint64, machine func() sm.Machine) ([]*Replica, *transport.Memory) {
	t.Helper()
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewMemory()
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i], err = New(Config{
			ID:      types.ReplicaID(i),
			Params:  params,
			Machine: machine(),
			App:     ycsb.NewStore(1000),
			DataDir: filepath.Join(base, "replica-"+string(rune('0'+i))),
			Journaling: JournalOptions{
				Sync:          wal.SyncGroup,
				SnapshotEvery: snapEvery,
			},
			ReplyToClients: true,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		reps[i].Attach(hub.AttachReplica(types.ReplicaID(i), reps[i]))
	}
	for _, r := range reps {
		r.Run()
	}
	return reps, hub
}

func stopAll(reps []*Replica, hub *transport.Memory) {
	for i, r := range reps {
		hub.Detach(types.ReplicaID(i))
		r.Stop()
	}
}

// TestReplicaRestartResumesFromDisk is the acceptance scenario of the
// durable storage subsystem: stop a replica after N decided blocks,
// construct a fresh one on the same data dir, and observe it resume at
// ledger height N with an identical head hash and application state digest
// — no state transfer from peers involved.
func TestReplicaRestartResumesFromDisk(t *testing.T) {
	base := t.TempDir()
	const txns = 6
	reps, hub := durableCluster(t, 4, base, 0, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := runClient(t, hub, reps[0].cfg.Params, 1, txns)
	waitFor(t, 10*time.Second, func() bool { return len(c.Completions()) == txns })
	for i, r := range reps {
		waitFor(t, 5*time.Second, func() bool { return r.Ledger().Height() == txns })
		if err := r.DurabilityErr(); err != nil {
			t.Fatalf("replica %d durability: %v", i, err)
		}
	}

	type preCrash struct {
		height uint64
		head   types.Digest
		state  types.Digest
	}
	before := make([]preCrash, len(reps))
	stopAll(reps, hub)
	for i, r := range reps {
		before[i] = preCrash{r.Ledger().Height(), r.Ledger().Head().Hash(), r.StateDigest()}
	}

	// A fresh process on the same directories: fresh machines, fresh
	// (empty) applications — everything below must come from disk.
	params := reps[0].cfg.Params
	for i := 0; i < 4; i++ {
		r, err := New(Config{
			ID:      types.ReplicaID(i),
			Params:  params,
			Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4}),
			App:     ycsb.NewStore(1000),
			DataDir: filepath.Join(base, "replica-"+string(rune('0'+i))),
		})
		if err != nil {
			t.Fatalf("restart replica %d: %v", i, err)
		}
		if got := r.Ledger().Height(); got != before[i].height {
			t.Fatalf("replica %d resumed at height %d, want %d", i, got, before[i].height)
		}
		if r.Ledger().Head().Hash() != before[i].head {
			t.Fatalf("replica %d head hash differs after restart", i)
		}
		if r.StateDigest() != before[i].state {
			t.Fatalf("replica %d application state differs after restart", i)
		}
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d restored chain fails audit: %v", i, err)
		}
		r.Stop()
	}
}

// TestClusterRestartServesNewTransactions restarts the whole deployment on
// its data dirs and checks it both resumes the journal and keeps deciding.
func TestClusterRestartServesNewTransactions(t *testing.T) {
	base := t.TempDir()
	mkMachine := func() sm.Machine { return pbft.New(pbft.Config{BatchSize: 1, Window: 4}) }
	reps, hub := durableCluster(t, 4, base, 0, mkMachine)
	c := runClient(t, hub, reps[0].cfg.Params, 1, 3)
	waitFor(t, 10*time.Second, func() bool { return len(c.Completions()) == 3 })
	for _, r := range reps {
		waitFor(t, 5*time.Second, func() bool { return r.Ledger().Height() == 3 })
	}
	stopAll(reps, hub)

	reps2, hub2 := durableCluster(t, 4, base, 0, mkMachine)
	defer stopAll(reps2, hub2)
	for i, r := range reps2 {
		if r.Ledger().Height() != 3 {
			t.Fatalf("replica %d restarted at height %d, want 3", i, r.Ledger().Height())
		}
	}
	c2 := runClient(t, hub2, reps2[0].cfg.Params, 2, 2)
	waitFor(t, 10*time.Second, func() bool { return len(c2.Completions()) == 2 })
	for i, r := range reps2 {
		waitFor(t, 5*time.Second, func() bool { return r.Ledger().Height() == 5 })
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d post-restart chain: %v", i, err)
		}
		if err := r.DurabilityErr(); err != nil {
			t.Fatalf("replica %d durability: %v", i, err)
		}
	}
}

// TestPeriodicSnapshotsPersistAndRestore checks SnapshotEvery produces
// checkpoints that a restart actually uses.
func TestPeriodicSnapshotsPersistAndRestore(t *testing.T) {
	base := t.TempDir()
	const txns = 5
	reps, hub := durableCluster(t, 4, base, 2, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := runClient(t, hub, reps[0].cfg.Params, 1, txns)
	waitFor(t, 10*time.Second, func() bool { return len(c.Completions()) == txns })
	for _, r := range reps {
		waitFor(t, 5*time.Second, func() bool { return r.Ledger().Height() == txns })
	}
	state0 := func() types.Digest {
		var d types.Digest
		reps[0].Inspect(func() { d = reps[0].StateDigest() })
		return d
	}()
	stopAll(reps, hub)

	r, err := New(Config{
		ID:      0,
		Params:  reps[0].cfg.Params,
		Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4}),
		App:     ycsb.NewStore(1000),
		DataDir: filepath.Join(base, "replica-0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	snap := r.Durable().LatestSnapshot()
	if snap == nil {
		t.Fatal("no checkpoint persisted despite SnapshotEvery=2")
	}
	if snap.Height == 0 || snap.Height%2 != 0 {
		t.Fatalf("checkpoint at height %d, want a positive multiple of 2", snap.Height)
	}
	if r.StateDigest() != state0 {
		t.Fatal("state restored via checkpoint differs from pre-stop state")
	}
}
