package runtime

import (
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// TestAdminHealthFlipsOnDurabilityFailure wires a replica's admin endpoints
// exactly as cmd/rccnode does and kills its WAL under load: /healthz must
// flip 200 → 503 with the sticky durability error as the body, and the
// rcc_durability_healthy gauge in /metrics must drop to 0 — the operator's
// two views of the same failure.
func TestAdminHealthFlipsOnDurabilityFailure(t *testing.T) {
	base := t.TempDir()
	params, err := quorum.NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, 64)
	hub := transport.NewMemory()
	reps := make([]*Replica, 4)
	for i := 0; i < 4; i++ {
		reps[i], err = New(Config{
			ID:             types.ReplicaID(i),
			Params:         params,
			Machine:        pbft.New(pbft.Config{BatchSize: 1, Window: 4, Metrics: met}),
			App:            ycsb.NewStore(1000),
			DataDir:        filepath.Join(base, "replica-"+string(rune('0'+i))),
			Journaling:     JournalOptions{Sync: wal.SyncGroup, Async: true},
			ReplyToClients: true,
			Metrics:        met,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		reps[i].Attach(hub.AttachReplica(types.ReplicaID(i), reps[i]))
	}
	for _, r := range reps {
		r.Run()
	}
	defer stopAll(reps, hub)

	handler := obs.NewHandler(met.Registry(), met.Tracer, met.Flight, obs.Health{
		Healthy: reps[3].DurabilityErr,
		Ready:   reps[3].DurabilityErr,
	})
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthy replica: /healthz = %d (%q), want 200", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("healthy replica: /readyz = %d, want 200", code)
	}

	// The disk "dies"; decided blocks now fail through the committer and
	// set the sticky error.
	reps[3].Durable().WAL().Close()
	c := runClient(t, hub, params, 1, 3)
	waitFor(t, 15*time.Second, func() bool { return len(c.Completions()) == 3 })
	waitFor(t, 10*time.Second, func() bool { return reps[3].DurabilityErr() != nil })

	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("after WAL death: /healthz = %d (%q), want 503", code, body)
	}
	if !strings.Contains(body, reps[3].DurabilityErr().Error()) {
		t.Fatalf("/healthz body %q does not carry the durability error %q", body, reps[3].DurabilityErr())
	}
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("after WAL death: /readyz = %d, want 503", code)
	}

	_, metrics := get("/metrics")
	if !strings.Contains(metrics, `rcc_durability_healthy{replica="3"} 0`) {
		t.Fatalf("/metrics does not show replica 3 unhealthy:\n%s", grepLines(metrics, "rcc_durability_healthy"))
	}
	if !strings.Contains(metrics, `rcc_durability_healthy{replica="0"} 1`) {
		t.Fatalf("/metrics lost replica 0's healthy gauge:\n%s", grepLines(metrics, "rcc_durability_healthy"))
	}
}

// grepLines filters s to lines containing sub, for focused failure output.
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
