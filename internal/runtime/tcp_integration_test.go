package runtime

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/crypto"
	"repro/internal/crypto/digestcache"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// tcpAuthOpts parameterizes the authentication stack of a test cluster.
type tcpAuthOpts struct {
	// auth builds the party's authenticator; nil runs unauthenticated.
	auth func(party uint32) crypto.Authenticator
	// verifyWorkers is passed through to TCPConfig (0 = scheme default).
	verifyWorkers int
	// cacheEntries > 0 gives each replica a verified-digest cache.
	cacheEntries int
}

// macOpts is the MAC-from-shared-secret configuration the original tests
// use ("" = no authentication).
func macOpts(secret string) tcpAuthOpts {
	if secret == "" {
		return tcpAuthOpts{}
	}
	return tcpAuthOpts{auth: func(p uint32) crypto.Authenticator { return crypto.NewMAC(p, []byte(secret)) }}
}

// dsOpts is the deterministic dev-keyring ED25519 configuration — the
// cmd/rccnode `-auth ds` stack.
func dsOpts(secret string) tcpAuthOpts {
	return tcpAuthOpts{auth: func(p uint32) crypto.Authenticator { return crypto.NewDSDev(p, []byte(secret)) }}
}

// tcpCluster spins up n replicas over loopback TCP with pairwise MACs — the
// exact stack cmd/rccnode runs.
func tcpCluster(t *testing.T, n int, secret string, machine func() sm.Machine) (map[types.ReplicaID]string, []*Replica) {
	t.Helper()
	return tcpClusterWith(t, n, macOpts(secret), machine)
}

func tcpClusterWith(t *testing.T, n int, opts tcpAuthOpts, machine func() sm.Machine) (map[types.ReplicaID]string, []*Replica) {
	t.Helper()
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	tcps := make([]*transport.TCP, n)
	peers := make(map[types.ReplicaID]string)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		reps[i], err = New(Config{
			ID:             id,
			Params:         params,
			Machine:        machine(),
			App:            ycsb.NewStore(1000),
			Journal:        true,
			ReplyToClients: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := transport.TCPConfig{
			Self: id, Listen: "127.0.0.1:0",
			VerifyWorkers: opts.verifyWorkers,
		}
		if opts.auth != nil {
			cfg.Auth = opts.auth(crypto.PartyID(id))
		}
		if opts.cacheEntries > 0 {
			cfg.DigestCache = digestcache.New(opts.cacheEntries)
		}
		tcp, err := transport.NewTCP(cfg, reps[i])
		if err != nil {
			t.Fatal(err)
		}
		tcps[i] = tcp
		peers[id] = tcp.Addr()
	}
	for i := 0; i < n; i++ {
		tcps[i].SetPeers(peers)
		reps[i].Attach(tcps[i])
		reps[i].Run()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return peers, reps
}

func tcpClient(t *testing.T, peers map[types.ReplicaID]string, params quorum.Params, id types.ClientID, secret string, txns int) *client.Client {
	t.Helper()
	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: 1000, Seed: int64(id)})
	txs := make([]types.Transaction, txns)
	for i := range txs {
		txs[i] = wl.Next(id)
	}
	return tcpClientWith(t, peers, params, id, macOpts(secret), txs)
}

func tcpClientWith(t *testing.T, peers map[types.ReplicaID]string, params quorum.Params, id types.ClientID, opts tcpAuthOpts, txs []types.Transaction) *client.Client {
	t.Helper()
	mach := client.New(client.Config{Client: id, Broadcast: true, RetryTimeout: time.Second})
	for _, tx := range txs {
		mach.Submit(tx)
	}
	proc := NewClient(id, params, mach)
	cfg := transport.TCPConfig{IsClient: true, SelfClient: id, Peers: peers}
	if opts.auth != nil {
		cfg.Auth = opts.auth(crypto.ClientPartyID(id))
	}
	tcp, err := transport.NewTCP(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	proc.Attach(tcp)
	proc.Run()
	t.Cleanup(proc.Stop)
	return mach
}

func TestPBFTOverTCP(t *testing.T) {
	params, _ := quorum.NewParams(4)
	peers, reps := tcpCluster(t, 4, "tcp-secret", func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := tcpClient(t, peers, params, 1, "tcp-secret", 5)

	waitFor(t, 20*time.Second, func() bool { return len(c.Completions()) == 5 })
	for i, r := range reps {
		waitFor(t, 10*time.Second, func() bool { return r.Executed() == 5 })
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d ledger: %v", i, err)
		}
	}
	h := reps[0].Ledger().Head().Hash()
	for i := 1; i < 4; i++ {
		if reps[i].Ledger().Head().Hash() != h {
			t.Fatalf("replica %d ledger diverges over TCP", i)
		}
	}
}

// TestAsyncDurableOverTCP is the multi-node smoke test of the whole
// refactored stack: real sockets, per-peer outbound queues, batched v2
// frames, the async journal, and client acks riding the per-client
// transport queues straight off the WAL committer (no shared ack sender).
// Every acked transaction must survive a full stop-and-restart.
func TestAsyncDurableOverTCP(t *testing.T) {
	base := t.TempDir()
	const n, txns = 4, 6
	params, _ := quorum.NewParams(n)
	mkMachine := func() sm.Machine { return pbft.New(pbft.Config{BatchSize: 1, Window: 4}) }

	boot := func() ([]*Replica, map[types.ReplicaID]string) {
		reps := make([]*Replica, n)
		tcps := make([]*transport.TCP, n)
		peers := make(map[types.ReplicaID]string)
		for i := 0; i < n; i++ {
			id := types.ReplicaID(i)
			var err error
			reps[i], err = New(Config{
				ID: id, Params: params, Machine: mkMachine(),
				App:            ycsb.NewStore(1000),
				DataDir:        filepath.Join(base, fmt.Sprintf("replica-%d", i)),
				Journaling:     JournalOptions{Async: true},
				ReplyToClients: true,
			})
			if err != nil {
				t.Fatalf("replica %d: %v", i, err)
			}
			tcp, err := transport.NewTCP(transport.TCPConfig{Self: id, Listen: "127.0.0.1:0"}, reps[i])
			if err != nil {
				t.Fatal(err)
			}
			tcps[i] = tcp
			peers[id] = tcp.Addr()
		}
		for i := 0; i < n; i++ {
			tcps[i].SetPeers(peers)
			reps[i].Attach(tcps[i])
			reps[i].Run()
		}
		return reps, peers
	}

	reps, peers := boot()
	c := tcpClient(t, peers, params, 1, "", txns)
	waitFor(t, 20*time.Second, func() bool { return len(c.Completions()) == txns })
	for i, r := range reps {
		waitFor(t, 10*time.Second, func() bool { return r.Ledger().Height() == txns })
		if err := r.DurabilityErr(); err != nil {
			t.Fatalf("replica %d durability: %v", i, err)
		}
		r.Stop()
	}

	// Restart from disk: every replica resumes at the acked height.
	reps2, _ := boot()
	for i, r := range reps2 {
		if got := r.Ledger().Height(); got != txns {
			t.Fatalf("replica %d resumed at height %d, want %d", i, got, txns)
		}
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d restored chain: %v", i, err)
		}
		r.Stop()
	}
}

func TestRCCOverTCP(t *testing.T) {
	params, _ := quorum.NewParams(4)
	peers, _ := tcpCluster(t, 4, "", func() sm.Machine {
		return rcc.New(rcc.Config{BatchSize: 1, Window: 4})
	})
	c1 := tcpClient(t, peers, params, 1, "", 3)
	c2 := tcpClient(t, peers, params, 2, "", 3)
	waitFor(t, 30*time.Second, func() bool {
		return len(c1.Completions()) == 3 && len(c2.Completions()) == 3
	})
}
