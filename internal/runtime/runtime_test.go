package runtime

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// memCluster builds an n-replica in-memory runtime deployment.
func memCluster(t *testing.T, n int, machine func() sm.Machine) ([]*Replica, *transport.Memory) {
	t.Helper()
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewMemory()
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		var err error
		reps[i], err = New(Config{
			ID:             types.ReplicaID(i),
			Params:         params,
			Machine:        machine(),
			App:            ycsb.NewStore(1000),
			Journal:        true,
			ReplyToClients: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		reps[i].Attach(hub.AttachReplica(types.ReplicaID(i), reps[i]))
	}
	for _, r := range reps {
		r.Run()
	}
	t.Cleanup(func() {
		for i, r := range reps {
			hub.Detach(types.ReplicaID(i))
			r.Stop()
		}
	})
	return reps, hub
}

func runClient(t *testing.T, hub *transport.Memory, params quorum.Params, id types.ClientID, txns int) *client.Client {
	t.Helper()
	mach := client.New(client.Config{Client: id, Broadcast: true, RetryTimeout: time.Second})
	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: 1000, Seed: int64(id)})
	for i := 0; i < txns; i++ {
		mach.Submit(wl.Next(id))
	}
	proc := NewClient(id, params, mach)
	proc.Attach(hub.AttachClient(id, proc))
	proc.Run()
	t.Cleanup(proc.Stop)
	return mach
}

func TestPBFTOverGoroutineRuntime(t *testing.T) {
	params, _ := quorum.NewParams(4)
	reps, hub := memCluster(t, 4, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := runClient(t, hub, params, 1, 5)

	waitFor(t, 10*time.Second, func() bool { return len(c.Completions()) == 5 })
	// Every replica executed the same 5 transactions and journalled them.
	for i, r := range reps {
		waitFor(t, 5*time.Second, func() bool { return r.Executed() == 5 })
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d ledger: %v", i, err)
		}
	}
	// Ledgers must agree block for block.
	h0 := reps[0].Ledger().Head().Hash()
	for i := 1; i < 4; i++ {
		if reps[i].Ledger().Head().Hash() != h0 {
			t.Fatalf("replica %d ledger head diverges", i)
		}
	}
}

func TestRCCOverGoroutineRuntime(t *testing.T) {
	params, _ := quorum.NewParams(4)
	_, hub := memCluster(t, 4, func() sm.Machine {
		return rcc.New(rcc.Config{BatchSize: 1, Window: 4})
	})
	// Four clients, one per instance.
	clients := make([]*client.Client, 4)
	for i := range clients {
		clients[i] = runClient(t, hub, params, types.ClientID(i+1), 3)
	}
	for i, c := range clients {
		waitFor(t, 15*time.Second, func() bool { return len(c.Completions()) == 3 })
		_ = i
	}
}

func TestClientRepliesCarryMatchingResults(t *testing.T) {
	params, _ := quorum.NewParams(4)
	_, hub := memCluster(t, 4, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := runClient(t, hub, params, 9, 1)
	waitFor(t, 10*time.Second, func() bool { return len(c.Completions()) == 1 })
	if c.Completions()[0].Result.IsZero() {
		t.Fatal("completion carries zero result digest")
	}
}

func TestStopIsIdempotentAndClean(t *testing.T) {
	params, _ := quorum.NewParams(4)
	hub := transport.NewMemory()
	r, err := New(Config{
		ID: 0, Params: params,
		Machine: pbft.New(pbft.Config{BatchSize: 1}),
		App:     ycsb.NewStore(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Attach(hub.AttachReplica(0, r))
	r.Run()
	r.Stop()
	r.Stop() // second stop must not panic or deadlock
}

func TestQueueBackpressureDoesNotDeadlockOnStop(t *testing.T) {
	params, _ := quorum.NewParams(4)
	r, err := New(Config{
		ID: 0, Params: params,
		Machine:    pbft.New(pbft.Config{BatchSize: 1}),
		App:        ycsb.NewStore(10),
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.DeliverReplica(1, types.NewPrepare(0, 1, 0, types.Round(i+1), types.ZeroDigest))
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("producer deadlocked against stopped replica")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(fmt.Sprintf("condition not reached within %v", timeout))
}
