package runtime

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/sm"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wal"
	"repro/internal/ycsb"
)

// asyncCluster is durableCluster with the pipelined journal enabled.
func asyncCluster(t *testing.T, n int, base string, queueDepth int, machine func() sm.Machine) ([]*Replica, *transport.Memory) {
	t.Helper()
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	hub := transport.NewMemory()
	reps := make([]*Replica, n)
	for i := 0; i < n; i++ {
		reps[i], err = New(Config{
			ID:      types.ReplicaID(i),
			Params:  params,
			Machine: machine(),
			App:     ycsb.NewStore(1000),
			DataDir: filepath.Join(base, "replica-"+string(rune('0'+i))),
			Journaling: JournalOptions{
				Sync:       wal.SyncGroup,
				Async:      true,
				QueueDepth: queueDepth,
			},
			ReplyToClients: true,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		reps[i].Attach(hub.AttachReplica(types.ReplicaID(i), reps[i]))
	}
	for _, r := range reps {
		r.Run()
	}
	return reps, hub
}

// TestAsyncJournalServesAndResumes is the pipelined path's end-to-end
// acceptance: clients get their f+1 replies only via durability callbacks,
// and a full restart resumes every replica at the acknowledged height.
func TestAsyncJournalServesAndResumes(t *testing.T) {
	base := t.TempDir()
	const txns = 8
	mkMachine := func() sm.Machine { return pbft.New(pbft.Config{BatchSize: 1, Window: 4}) }
	reps, hub := asyncCluster(t, 4, base, 16, mkMachine)
	c := runClient(t, hub, reps[0].cfg.Params, 1, txns)
	waitFor(t, 15*time.Second, func() bool { return len(c.Completions()) == txns })
	for i, r := range reps {
		waitFor(t, 5*time.Second, func() bool { return r.Ledger().Height() == txns })
		if err := r.DurabilityErr(); err != nil {
			t.Fatalf("replica %d durability: %v", i, err)
		}
	}
	stopAll(reps, hub)

	// The drained shutdown leaves every acked block on disk; a fresh
	// process resumes at the same height with an identical chain.
	reps2, hub2 := asyncCluster(t, 4, base, 16, mkMachine)
	defer stopAll(reps2, hub2)
	for i, r := range reps2 {
		if got := r.Ledger().Height(); got != txns {
			t.Fatalf("replica %d resumed at height %d, want %d", i, got, txns)
		}
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d restored chain: %v", i, err)
		}
	}
	// And keeps deciding new work.
	c2 := runClient(t, hub2, reps2[0].cfg.Params, 2, 2)
	waitFor(t, 15*time.Second, func() bool { return len(c2.Completions()) == 2 })
}

// TestAsyncCrashRestartKeepsAckedPrefix crashes a replica without any drain
// — in-flight queue and write buffer die on the floor — and verifies the
// restart replays a verified prefix covering every height the CLIENT got
// enough replies for. This is the "no acked request is ever lost" guarantee
// of the ack-deferral design.
func TestAsyncCrashRestartKeepsAckedPrefix(t *testing.T) {
	base := t.TempDir()
	const txns = 12
	reps, hub := asyncCluster(t, 4, base, 4, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	c := runClient(t, hub, reps[0].cfg.Params, 1, txns)
	waitFor(t, 15*time.Second, func() bool { return len(c.Completions()) == txns })
	acked := uint64(len(c.Completions()))

	// Crash every replica abruptly: no committer drain, no buffer flush.
	for i, r := range reps {
		hub.Detach(types.ReplicaID(i))
		r.stopOnce.Do(func() { close(r.stopped) })
		r.wg.Wait()
		r.Durable().CloseAbrupt()
	}

	// A client completion requires f+1 = 2 identical replies, and a reply
	// is only sent once that replica's WAL record is durable. So at least
	// f+1 replicas must replay every acked height after the crash.
	quorumOK := 0
	for i := 0; i < 4; i++ {
		r, err := New(Config{
			ID:      types.ReplicaID(i),
			Params:  reps[0].cfg.Params,
			Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4}),
			App:     ycsb.NewStore(1000),
			DataDir: filepath.Join(base, "replica-"+string(rune('0'+i))),
		})
		if err != nil {
			t.Fatalf("restart replica %d: %v", i, err)
		}
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d post-crash chain fails audit: %v", i, err)
		}
		if r.Ledger().Height() >= acked {
			quorumOK++
		}
		r.Stop()
	}
	if quorumOK < 2 {
		t.Fatalf("only %d replicas hold all %d acked heights; f+1 = 2 must", quorumOK, acked)
	}
}

// TestAsyncJournalFailureSilencesAcks kills the WAL under a running async
// replica: the sticky error must surface through the committer to
// DurabilityErr, and the replica must stop acknowledging — clients still
// complete via the three healthy replicas.
func TestAsyncJournalFailureSilencesAcks(t *testing.T) {
	base := t.TempDir()
	reps, hub := asyncCluster(t, 4, base, 8, func() sm.Machine {
		return pbft.New(pbft.Config{BatchSize: 1, Window: 4})
	})
	defer stopAll(reps, hub)
	c := runClient(t, hub, reps[0].cfg.Params, 1, 2)
	waitFor(t, 15*time.Second, func() bool { return len(c.Completions()) == 2 })

	// Replica 3's disk "dies": every later submit fails through the
	// committer with a sticky error.
	reps[3].Durable().WAL().Close()

	// A second client, attached through a spy that records which replica
	// sent each reply.
	mach := client.New(client.Config{Client: 2, Broadcast: true, RetryTimeout: time.Second})
	wl := ycsb.NewWorkload(ycsb.WorkloadConfig{Records: 1000, Seed: 2})
	for i := 0; i < 3; i++ {
		mach.Submit(wl.Next(2))
	}
	proc := NewClient(2, reps[0].cfg.Params, mach)
	spy := &replySpy{inner: proc, from: make(map[types.ReplicaID]int)}
	proc.Attach(hub.AttachClient(2, spy))
	proc.Run()
	defer proc.Stop()

	waitFor(t, 15*time.Second, func() bool { return len(mach.Completions()) == 3 })
	waitFor(t, 10*time.Second, func() bool { return reps[3].DurabilityErr() != nil })

	// The broken replica must not have acknowledged anything decided after
	// its journal died; the three healthy replicas carried the quorum.
	if n := spy.replies(3); n != 0 {
		t.Fatalf("replica 3 sent %d replies after its journal died", n)
	}
	for id := types.ReplicaID(0); id < 3; id++ {
		if spy.replies(id) == 0 {
			t.Fatalf("healthy replica %d sent no replies", id)
		}
	}
}

// replySpy counts client replies per sending replica on their way into the
// client process.
type replySpy struct {
	inner transport.Endpoint
	mu    sync.Mutex
	from  map[types.ReplicaID]int
}

func (s *replySpy) DeliverReplica(from types.ReplicaID, m types.Message) {
	if _, ok := m.(*types.ClientReply); ok {
		s.mu.Lock()
		s.from[from]++
		s.mu.Unlock()
	}
	s.inner.DeliverReplica(from, m)
}

func (s *replySpy) DeliverClient(c types.ClientID, m types.Message) {
	s.inner.DeliverClient(c, m)
}

func (s *replySpy) replies(from types.ReplicaID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.from[from]
}

// TestDataDirRefusesForeignReplica is the identity-stamp bugfix at the
// runtime level: replica 1 must not come up on replica 0's data dir.
func TestDataDirRefusesForeignReplica(t *testing.T) {
	base := t.TempDir()
	params, _ := quorum.NewParams(4)
	dir := filepath.Join(base, "replica-0")
	r, err := New(Config{
		ID: 0, Params: params,
		Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4}),
		App:     ycsb.NewStore(1000),
		DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if _, err := New(Config{
		ID: 1, Params: params,
		Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4}),
		App:     ycsb.NewStore(1000),
		DataDir: dir,
	}); err == nil {
		t.Fatal("replica 1 opened replica 0's data dir")
	}
}
