package runtime

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/pbft"
	"repro/internal/quorum"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// TestWatchdogDetectsWedgedLoop deliberately wedges the consensus event loop
// (a long-running Inspect closure) and asserts the two observability paths
// agree about it: a loop_stalled flight event lands in the ring, and
// rcc_loop_stalls_total increments in the registry. Run under -race this
// also pins the watchdog/loop/recorder interaction as data-race-free.
func TestWatchdogDetectsWedgedLoop(t *testing.T) {
	params, err := quorum.NewParams(4)
	if err != nil {
		t.Fatal(err)
	}
	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, 64)
	r, err := New(Config{
		ID:      2,
		Params:  params,
		Machine: pbft.New(pbft.Config{BatchSize: 1, Window: 4, ProgressTimeout: time.Minute}),
		App:     ycsb.NewStore(100),
		Flight:  FlightOptions{StallThreshold: 40 * time.Millisecond},
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Run()
	defer r.Stop()

	// Wedge the loop: Inspect runs its closure ON the event loop, so this
	// sleep stops all event servicing — exactly the condition the watchdog
	// exists to catch — for ~10x the threshold.
	if !r.Inspect(func() { time.Sleep(400 * time.Millisecond) }) {
		t.Fatal("replica stopped before the wedge could run")
	}

	waitFor(t, 5*time.Second, func() bool { return r.stallCount.Load() >= 1 })

	snap := met.Flight.Dump(0)
	var stall *flight.Event
	for i := range snap.Events {
		e := snap.Events[i]
		if e.Kind == flight.KLoopStall && e.Sub == flight.SubRuntime && e.Replica == 2 {
			stall = &snap.Events[i]
		}
	}
	if stall == nil {
		t.Fatalf("no loop_stalled event in the ring (%d events)", len(snap.Events))
	}
	if got := time.Duration(stall.Detail); got < 40*time.Millisecond {
		t.Fatalf("loop_stalled reports %v, want >= the 40ms threshold", got)
	}

	var buf strings.Builder
	met.Registry().WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `rcc_loop_stalls_total{replica="2"}`) {
		t.Fatalf("rcc_loop_stalls_total missing from /metrics:\n%s", grepLines(buf.String(), "loop_stalls"))
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, `rcc_loop_stalls_total{replica="2"} `) {
			if strings.TrimPrefix(line, `rcc_loop_stalls_total{replica="2"} `) == "0" {
				t.Fatalf("counter did not increment: %s", line)
			}
		}
	}
}

// flightReplica boots one durable, state-sync- and flight-enabled replica
// with its own metrics catalog (so every incarnation has its own ring and
// registry, like a real process).
func flightReplica(t *testing.T, base string, id types.ReplicaID, params quorum.Params,
	listen string, peers map[types.ReplicaID]string) (*Replica, *transport.TCP, *obs.NodeMetrics) {
	t.Helper()
	met := obs.NewNodeMetrics(obs.NewRegistry(), 0, 64)
	rep, err := New(Config{
		ID:     id,
		Params: params,
		Machine: pbft.New(pbft.Config{
			BatchSize: 1, Window: 8,
			// Keep view changes out of the incident: the demotion /
			// reconnect / state-transfer chain is what is under test.
			ProgressTimeout: 20 * time.Second,
			Metrics:         met,
		}),
		App:            ycsb.NewStore(1000),
		DataDir:        filepath.Join(base, fmt.Sprintf("replica-%d", id)),
		Journaling:     JournalOptions{Async: true},
		ReplyToClients: true,
		StateSync: StateSyncOptions{
			Enabled:     true,
			OfferWait:   150 * time.Millisecond,
			Retry:       300 * time.Millisecond,
			SteadyProbe: 500 * time.Millisecond,
		},
		Flight:  FlightOptions{MirrorInterval: 100 * time.Millisecond},
		Metrics: met,
	})
	if err != nil {
		t.Fatalf("replica %d: %v", id, err)
	}
	tcp, err := transport.NewTCP(transport.TCPConfig{
		Self: id, Listen: listen, Flight: met.Flight,
	}, rep)
	if err != nil {
		t.Fatalf("replica %d transport: %v", id, err)
	}
	if peers != nil {
		tcp.SetPeers(peers)
	}
	rep.Attach(tcp)
	return rep, tcp, met
}

// adminAddr serves a replica's admin endpoints over real HTTP and returns
// the host:port flight.FetchHTTP wants.
func adminAddr(t *testing.T, met *obs.NodeMetrics) string {
	t.Helper()
	srv := httptest.NewServer(obs.NewHandler(met.Registry(), met.Tracer, met.Flight, obs.Health{}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// preserveFlightDumps copies every flight.bin under base into $FLIGHT_DUMP_DIR
// when the test fails, so CI can upload the black boxes of a failed run as
// artifacts before t.TempDir's cleanup destroys them. No-op when the
// variable is unset (local runs). Register it right after t.TempDir so the
// LIFO cleanup order runs the copy before the removal.
func preserveFlightDumps(t *testing.T, base string) {
	t.Helper()
	dir := os.Getenv("FLIGHT_DUMP_DIR")
	if dir == "" {
		return
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("preserving flight dumps: %v", err)
			return
		}
		filepath.Walk(base, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() || info.Name() != flight.FileName {
				return err
			}
			rel := strings.TrimPrefix(path, base+string(os.PathSeparator))
			out := filepath.Join(dir, t.Name()+"-"+strings.ReplaceAll(rel, string(os.PathSeparator), "-"))
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Logf("preserving %s: %v", path, rerr)
				return nil
			}
			if werr := os.WriteFile(out, data, 0o644); werr != nil {
				t.Logf("preserving %s: %v", path, werr)
				return nil
			}
			t.Logf("preserved flight dump %s", out)
			return nil
		})
	})
}

// TestFlightIncidentTimelineOverTCP is the acceptance test for the flight
// recorder as a whole: a 4-node TCP cluster takes load, one replica dies
// abruptly mid-deployment (its peers demote the dead link), the cluster
// decides on without it, the replica restarts behind and heals through state
// transfer. The merged timeline — scraped from all four live /debug/events
// endpoints plus the dead incarnation's crash-persisted flight.bin — must
// reconstruct the incident in causal order: demotion, reconnect, the
// statesync phase ladder, and the synced rejoin.
func TestFlightIncidentTimelineOverTCP(t *testing.T) {
	base := t.TempDir()
	preserveFlightDumps(t, base)
	const n = 4
	params, err := quorum.NewParams(n)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, n)
	tcps := make([]*transport.TCP, n)
	mets := make([]*obs.NodeMetrics, n)
	peers := make(map[types.ReplicaID]string)
	for i := 0; i < n; i++ {
		id := types.ReplicaID(i)
		reps[i], tcps[i], mets[i] = flightReplica(t, base, id, params, "127.0.0.1:0", nil)
		peers[id] = tcps[i].Addr()
	}
	for i := 0; i < n; i++ {
		tcps[i].SetPeers(peers)
		reps[i].Run()
	}
	t.Cleanup(func() {
		for _, r := range reps[:3] {
			r.Stop()
		}
	})

	c := tcpClient(t, peers, params, 1, "", 6)
	waitFor(t, 30*time.Second, func() bool { return len(c.Completions()) == 6 })
	for _, r := range reps {
		waitFor(t, 10*time.Second, func() bool { return r.Ledger().Height() == 6 })
	}

	// Kill replica 3: Stop closes its sockets under its peers' feet — their
	// next write to the link fails and demotes it. The flight.bin mirror in
	// its data dir is the only record its first incarnation leaves behind.
	incidentStart := time.Now()
	reps[3].Stop()
	deadDump := filepath.Join(base, "replica-3", flight.FileName)
	deadSnap, err := flight.ReadFile(deadDump)
	if err != nil {
		t.Fatalf("dead replica left no flight.bin: %v", err)
	}
	if len(deadSnap.Events) == 0 {
		t.Fatal("dead replica's flight.bin is empty")
	}

	// Load while the replica is down forces peer writes to the dead link
	// (demotions) and moves the head it will have to catch up to.
	c2 := tcpClient(t, peers, params, 2, "", 8)
	waitFor(t, 30*time.Second, func() bool { return len(c2.Completions()) == 8 })

	// Restart at the same address: peers redial (reconnect events), the
	// replica finds itself behind and heals through the statesync ladder.
	rep3, _, met3 := flightReplica(t, base, 3, params, peers[3], peers)
	rep3.Run()
	t.Cleanup(rep3.Stop)
	waitFor(t, 30*time.Second, func() bool {
		return rep3.Ledger().Height() == 14 && rep3.StateSync().Synced()
	})
	if rep3.Ledger().HeadHash() != reps[0].Ledger().HeadHash() {
		t.Fatal("restarted replica diverged after catch-up")
	}

	// Scrape all four live rings over real HTTP, exactly as the rccnode
	// -timeline mode does, and merge them with the dead incarnation's dump.
	snaps := []flight.Snapshot{deadSnap}
	for _, met := range []*obs.NodeMetrics{mets[0], mets[1], mets[2], met3} {
		snap, err := flight.FetchHTTP(adminAddr(t, met))
		if err != nil {
			t.Fatalf("scraping /debug/events: %v", err)
		}
		if len(snap.Events) == 0 {
			t.Fatal("a live replica's /debug/events ring is empty")
		}
		snaps = append(snaps, snap)
	}
	tl := flight.Merge(snaps)

	// Reconstruct the incident: find the causal chain on the merged
	// timeline, constrained to events after the kill.
	idxDemote, idxReconnect := -1, -1
	idxBehind, idxSynced := -1, -1
	for i, ev := range tl {
		if ev.Wall.Before(incidentStart) {
			continue
		}
		switch {
		case ev.Kind == flight.KDemote && ev.Replica != 3 && idxDemote < 0:
			idxDemote = i
		case ev.Kind == flight.KReconnect && ev.Replica != 3 && idxReconnect < 0:
			idxReconnect = i
		case ev.Kind == flight.KSyncPhase && ev.Replica == 3:
			switch flight.Phase(ev.Detail) {
			case flight.PhaseBehind:
				if idxBehind < 0 {
					idxBehind = i
				}
			case flight.PhaseSynced:
				idxSynced = i
			}
		}
	}
	if idxDemote < 0 {
		t.Fatal("timeline missing the peers' demotion of the dead link")
	}
	if idxReconnect < 0 {
		t.Fatal("timeline missing the peers' reconnect after restart")
	}
	if idxBehind < 0 || idxSynced < 0 {
		t.Fatalf("timeline missing the statesync ladder (behind=%d synced=%d)", idxBehind, idxSynced)
	}
	if !(idxDemote < idxReconnect) {
		t.Fatalf("demotion (%d) must precede reconnect (%d)", idxDemote, idxReconnect)
	}
	if !(idxDemote < idxBehind && idxBehind < idxSynced) {
		t.Fatalf("incident out of causal order: demote=%d behind=%d synced=%d", idxDemote, idxBehind, idxSynced)
	}
}
