package runtime

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/quorum"
	"repro/internal/rcc"
	"repro/internal/sm"
	"repro/internal/types"
	"repro/internal/ycsb"
)

// TestAuthMACOverTCP runs the full RCC stack over loopback TCP with
// pairwise MACs on every link, replicas and clients both — the `-auth mac`
// stack of cmd/rccnode.
func TestAuthMACOverTCP(t *testing.T) {
	params, _ := quorum.NewParams(4)
	peers, reps := tcpClusterWith(t, 4, macOpts("auth-mac-smoke"), func() sm.Machine {
		return rcc.New(rcc.Config{BatchSize: 1, Window: 4})
	})
	c := tcpClient(t, peers, params, 1, "auth-mac-smoke", 4)
	waitFor(t, 30*time.Second, func() bool { return len(c.Completions()) == 4 })
	assertLedgersAgree(t, reps)
}

// TestAuthDSOverTCP runs the same stack under ED25519 dev-keyring
// signatures with the verify pool and the verified-digest cache active —
// the `-auth ds` stack, i.e. the authenticated configuration of Fig. 7
// (right) measured live.
func TestAuthDSOverTCP(t *testing.T) {
	opts := dsOpts("auth-ds-smoke")
	opts.cacheEntries = 4096
	params, _ := quorum.NewParams(4)
	peers, reps := tcpClusterWith(t, 4, opts, func() sm.Machine {
		return rcc.New(rcc.Config{BatchSize: 1, Window: 4})
	})
	c1 := tcpClientWith(t, peers, params, 1, opts, disjointWrites(1, 100, 4))
	c2 := tcpClientWith(t, peers, params, 2, opts, disjointWrites(2, 200, 4))
	waitFor(t, 30*time.Second, func() bool {
		return len(c1.Completions()) == 4 && len(c2.Completions()) == 4
	})
	assertLedgersAgree(t, reps)
}

// TestDSVerifyPoolDeterminismOverTCP pins the acceptance property of
// pooled verification: a DS cluster must produce byte-identical results and
// state digests whether frames are verified by one worker or eight — the
// pool parallelizes crypto, never reorders delivery.
func TestDSVerifyPoolDeterminismOverTCP(t *testing.T) {
	const txns = 5
	var wantState types.Digest
	var wantResults []types.Digest
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := dsOpts("determinism-secret")
			opts.verifyWorkers = workers
			opts.cacheEntries = 4096
			params, _ := quorum.NewParams(4)
			peers, reps := tcpClusterWith(t, 4, opts, func() sm.Machine {
				return rcc.New(rcc.Config{BatchSize: 1, Window: 4})
			})
			c1 := tcpClientWith(t, peers, params, 1, opts, disjointWrites(1, 100, txns))
			c2 := tcpClientWith(t, peers, params, 2, opts, disjointWrites(2, 200, txns))
			waitFor(t, 30*time.Second, func() bool {
				return len(c1.Completions()) == txns && len(c2.Completions()) == txns
			})
			assertLedgersAgree(t, reps)

			// Result hashes, keyed by (client, seq) so completion-arrival
			// order doesn't matter, must be byte-identical across runs.
			results := make([]types.Digest, 0, 2*txns)
			for _, c := range []*client.Client{c1, c2} {
				comps := c.Completions()
				sort.Slice(comps, func(i, j int) bool { return comps[i].Seq < comps[j].Seq })
				for _, comp := range comps {
					results = append(results, comp.Result)
				}
			}
			// Stop the cluster before touching application state (the app
			// is single-threaded by contract), then compare digests: equal
			// across replicas within the run, and across worker counts.
			for _, r := range reps {
				r.Stop()
			}
			state := reps[0].StateDigest()
			for i, r := range reps {
				if got := r.StateDigest(); got != state {
					t.Fatalf("replica %d state digest diverges within run: %x != %x", i, got, state)
				}
			}
			if wantState == (types.Digest{}) {
				wantState, wantResults = state, results
				return
			}
			if state != wantState {
				t.Fatalf("state digest differs across verify worker counts: %x != %x", state, wantState)
			}
			if len(results) != len(wantResults) {
				t.Fatalf("%d results, want %d", len(results), len(wantResults))
			}
			for i := range results {
				if results[i] != wantResults[i] {
					t.Fatalf("result %d differs across verify worker counts: %x != %x", i, results[i], wantResults[i])
				}
			}
		})
	}
}

// disjointWrites builds txns explicit writes to keys [base, base+txns) —
// clients with different bases never touch the same record, so the final
// application state is independent of cross-client interleaving and can be
// compared bit-for-bit across runs.
func disjointWrites(id types.ClientID, base uint32, txns int) []types.Transaction {
	out := make([]types.Transaction, txns)
	for i := range out {
		out[i] = types.Transaction{
			Client: id,
			Seq:    uint64(i + 1),
			Op:     ycsb.EncodeWrite(base+uint32(i), []byte(fmt.Sprintf("v-%d-%d", id, i))),
		}
	}
	return out
}

// assertLedgersAgree verifies every replica's chain and that all heads
// match.
func assertLedgersAgree(t *testing.T, reps []*Replica) {
	t.Helper()
	h := reps[0].Ledger().Head()
	waitFor(t, 10*time.Second, func() bool {
		h = reps[0].Ledger().Head()
		for _, r := range reps[1:] {
			if r.Ledger().Head().Hash() != h.Hash() {
				return false
			}
		}
		return true
	})
	for i, r := range reps {
		if err := r.Ledger().Verify(); err != nil {
			t.Fatalf("replica %d ledger: %v", i, err)
		}
	}
}
