package model

import (
	"math"
	"testing"
	"testing/quick"
)

func params(n, txn int) Params {
	f := (n - 1) / 3
	return Params{
		N: n, F: f, B: 1e9,
		St: 512 * float64(txn), Sm: 1024,
		TxnPerProposal: txn,
	}
}

func TestConcurrentBeatsPrimaryBackup(t *testing.T) {
	// §II's core claim: Tcmax > Tmax and TcPBFT > TPBFT for every n >= 4.
	for n := 4; n <= 100; n++ {
		p := params(n, 20)
		if Tcmax(p) <= Tmax(p) {
			t.Fatalf("n=%d: Tcmax %.0f <= Tmax %.0f", n, Tcmax(p), Tmax(p))
		}
		if TcPBFT(p) <= TPBFT(p) {
			t.Fatalf("n=%d: TcPBFT %.0f <= TPBFT %.0f", n, TcPBFT(p), TPBFT(p))
		}
	}
}

func TestStateExchangeOnlyAddsOverhead(t *testing.T) {
	for n := 4; n <= 100; n++ {
		for _, txn := range []int{20, 400} {
			p := params(n, txn)
			if TPBFT(p) > Tmax(p) {
				t.Fatalf("n=%d txn=%d: TPBFT above Tmax", n, txn)
			}
			if TcPBFT(p) > Tcmax(p) {
				t.Fatalf("n=%d txn=%d: TcPBFT above Tcmax", n, txn)
			}
		}
	}
}

func TestBatchingClosesThePBFTGap(t *testing.T) {
	// §I-A: with st >> sm (large batches), Tmax ≈ TPBFT. The 400-txn plot
	// must show a much smaller relative gap than the 20-txn plot.
	p20, p400 := params(16, 20), params(16, 400)
	gap20 := 1 - TPBFT(p20)/Tmax(p20)
	gap400 := 1 - TPBFT(p400)/Tmax(p400)
	if gap400 >= gap20 {
		t.Fatalf("batching did not shrink the PBFT gap: %.3f -> %.3f", gap20, gap400)
	}
	if gap400 > 0.05 {
		t.Fatalf("400-txn gap %.3f, want < 5%% (st >> sm)", gap400)
	}
}

func TestThroughputDecreasesWithN(t *testing.T) {
	prev := Point{}
	for i, pt := range Fig1Series(DefaultFig1(20), 100) {
		if i > 0 {
			if pt.Tmax > prev.Tmax || pt.TPBFT > prev.TPBFT {
				t.Fatalf("n=%d: primary-backup throughput increased with n", pt.N)
			}
		}
		prev = pt
	}
}

func TestFig1KnownValues(t *testing.T) {
	// Hand-computed anchor: n=4, 20 txn/proposal, st=10240 B, sm=1024 B.
	p := params(4, 20)
	wantTmax := 1e9 / (8 * 3 * 10240) * 20
	if got := Tmax(p); math.Abs(got-wantTmax) > 1 {
		t.Fatalf("Tmax = %.1f, want %.1f", got, wantTmax)
	}
	wantTPBFT := 1e9 / (8 * 3 * (10240 + 3*1024)) * 20
	if got := TPBFT(p); math.Abs(got-wantTPBFT) > 1 {
		t.Fatalf("TPBFT = %.1f, want %.1f", got, wantTPBFT)
	}
	// nf=3: Tcmax = 3B / (3·st + 2·st)
	wantTcmax := 3 * 1e9 / (8 * (3*10240 + 2*10240)) * 20
	if got := Tcmax(p); math.Abs(got-wantTcmax) > 1 {
		t.Fatalf("Tcmax = %.1f, want %.1f", got, wantTcmax)
	}
}

func TestFig1SeriesShape(t *testing.T) {
	series := Fig1Series(DefaultFig1(400), 100)
	if len(series) != 97 {
		t.Fatalf("series length %d, want 97 (n=4..100)", len(series))
	}
	// The concurrent curves must dominate everywhere and scale much more
	// gently: at n=91 the ratio Tcmax/Tmax should be roughly nf (§II).
	last := series[len(series)-1]
	nf := float64(last.N - (last.N-1)/3)
	ratio := last.Tcmax / last.Tmax
	if ratio < nf/2 || ratio > nf {
		t.Fatalf("n=%d: Tcmax/Tmax = %.1f, want within [nf/2, nf] = [%.1f, %.1f]", last.N, ratio, nf/2, nf)
	}
}

func TestMonotonicInBandwidth(t *testing.T) {
	f := func(bw uint32) bool {
		b := float64(bw%1000+1) * 1e6
		p := params(16, 100)
		p.B = b
		q := p
		q.B = 2 * b
		return Tmax(q) > Tmax(p) && TcPBFT(q) > TcPBFT(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
