// Package model implements the analytical throughput bounds of the RCC
// paper (§I-A and §II, plotted in Fig. 1): the maximum replication
// throughput of primary-backup consensus (Tmax), of PBFT-style state
// exchange (TPBFT), and their concurrent counterparts (Tcmax, TcPBFT).
//
// The bounds consider bandwidth only: a system with n replicas (f faulty,
// nf = n − f non-faulty), primary outgoing bandwidth B (bits/s), proposal
// size st bytes, and state-exchange message size sm bytes. They therefore
// give best-case upper limits — real deployments are additionally limited
// by CPU and memory (§V-B), which internal/flowsim models.
package model

// Params are the inputs of the analytical model.
type Params struct {
	N  int     // replicas
	F  int     // faulty replicas (nf = N − F)
	B  float64 // outgoing bandwidth per replica, bits per second
	St float64 // proposal (transaction set) size, bytes
	Sm float64 // state-exchange message size, bytes
	// TxnPerProposal is how many client transactions one proposal groups;
	// throughputs are reported in transactions per second.
	TxnPerProposal int
}

// NF returns nf = n − f.
func (p Params) NF() int { return p.N - p.F }

// proposalsPerSecond converts a per-proposal byte budget into proposals/s.
func (p Params) proposalsPerSecond(bytesPerProposal float64) float64 {
	if bytesPerProposal <= 0 {
		return 0
	}
	return p.B / (8 * bytesPerProposal)
}

// txns converts proposals/s into transactions/s.
func (p Params) txns(proposals float64) float64 {
	t := p.TxnPerProposal
	if t < 1 {
		t = 1
	}
	return proposals * float64(t)
}

// Tmax is the maximum throughput of any primary-backup consensus protocol:
// the primary must send the proposal to the n−1 other replicas, so
// Tmax = B / ((n−1)·st).
func Tmax(p Params) float64 {
	return p.txns(p.proposalsPerSecond(float64(p.N-1) * p.St))
}

// TPBFT is the maximum throughput of PBFT: on top of the proposal, every
// round exchanges two all-to-all phases (PREPARE and COMMIT), costing the
// primary three extra message sends/receives per replica:
// TPBFT = B / ((n−1)·(st + 3·sm)).
func TPBFT(p Params) float64 {
	return p.txns(p.proposalsPerSecond(float64(p.N-1) * (p.St + 3*p.Sm)))
}

// Tcmax is the maximum concurrent throughput (§II): all nf non-faulty
// replicas propose concurrently; each primary sends its own proposal to
// n−1 replicas and receives nf−1 proposals from the other primaries:
// Tcmax = nf·B / ((n−1)·st + (nf−1)·st).
func Tcmax(p Params) float64 {
	nf := float64(p.NF())
	per := float64(p.N-1)*p.St + (nf-1)*p.St
	return p.txns(nf * p.proposalsPerSecond(per))
}

// TcPBFT is the concurrent throughput with PBFT-style state exchange:
// TcPBFT = nf·B / ((n−1)·(st+3·sm) + (nf−1)·(st + 4·(n−1)·sm)).
func TcPBFT(p Params) float64 {
	nf := float64(p.NF())
	n1 := float64(p.N - 1)
	per := n1*(p.St+3*p.Sm) + (nf-1)*(p.St+4*n1*p.Sm)
	return p.txns(nf * p.proposalsPerSecond(per))
}

// Point is one sample of the Fig. 1 series.
type Point struct {
	N      int
	Tmax   float64
	TPBFT  float64
	Tcmax  float64
	TcPBFT float64
}

// Fig1Config matches the setup of Fig. 1: B = 1 Gbit/s, n = 3f+1,
// sm = 1 KiB, individual transactions of 512 B.
type Fig1Config struct {
	BandwidthBps   float64
	TxnPerProposal int // 20 on the left plot, 400 on the right
	TxnBytes       float64
	SmBytes        float64
}

// DefaultFig1 returns the paper's Fig. 1 configuration for the given
// proposal grouping (20 or 400 txn/proposal).
func DefaultFig1(txnPerProposal int) Fig1Config {
	return Fig1Config{
		BandwidthBps:   1e9,
		TxnPerProposal: txnPerProposal,
		TxnBytes:       512,
		SmBytes:        1024,
	}
}

// Fig1Series computes the four curves of Fig. 1 for n in [4, maxN],
// restricted to n = 3f+1 configurations (the paper's x-axis sweeps n,
// deriving f = ⌊(n−1)/3⌋).
func Fig1Series(cfg Fig1Config, maxN int) []Point {
	var out []Point
	for n := 4; n <= maxN; n++ {
		f := (n - 1) / 3
		p := Params{
			N:              n,
			F:              f,
			B:              cfg.BandwidthBps,
			St:             cfg.TxnBytes * float64(cfg.TxnPerProposal),
			Sm:             cfg.SmBytes,
			TxnPerProposal: cfg.TxnPerProposal,
		}
		out = append(out, Point{
			N:      n,
			Tmax:   Tmax(p),
			TPBFT:  TPBFT(p),
			Tcmax:  Tcmax(p),
			TcPBFT: TcPBFT(p),
		})
	}
	return out
}
