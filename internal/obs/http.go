package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"

	"repro/internal/obs/flight"
)

// Health wires liveness and readiness probes into the admin handler. A nil
// probe always passes.
type Health struct {
	// Healthy failing (non-nil error) flips /healthz to 503 — wired to the
	// replica's sticky DurabilityErr: a poisoned journal means the process
	// must be replaced, not retried.
	Healthy func() error
	// Ready failing flips /readyz to 503 — the replica is alive but not
	// serving at the cluster head yet (state transfer in progress).
	Ready func() error
}

// NewHandler returns the admin HTTP handler:
//
//	/metrics       Prometheus text exposition of reg
//	/healthz       liveness probe (503 once durability is poisoned)
//	/readyz        readiness probe (503 until caught up and journaling)
//	/debug/trace   lifecycle tracer ring dump; ?since=<cursor> for only-new
//	/debug/events  flight recorder dump; ?since=<cursor>, ?format=bin|text
//	/debug/pprof   Go runtime profiles
//
// Both ring endpoints share the cursor contract: each response ends with
// (text) or carries in its header (binary) a `next` cursor; passing it back
// as ?since= returns only events recorded after the previous poll. fr may
// be nil (flight recording disabled).
func NewHandler(reg *Registry, tr *Tracer, fr *flight.Recorder, h Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", probe(h.Healthy))
	mux.HandleFunc("/readyz", probe(h.Ready))
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr == nil {
			fmt.Fprintln(w, "trace: tracing disabled")
			return
		}
		since, ok := sinceParam(w, r)
		if !ok {
			return
		}
		tr.WriteTextSince(w, since)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "flight: recording disabled")
			return
		}
		since, ok := sinceParam(w, r)
		if !ok {
			return
		}
		snap := fr.Dump(since)
		if r.URL.Query().Get("format") == "bin" {
			w.Header().Set("Content-Type", "application/octet-stream")
			flight.EncodeBinary(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		flight.WriteText(w, snap)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// sinceParam parses the optional ?since= ring cursor; on a malformed value
// it writes 400 and reports false.
func sinceParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, true
	}
	since, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
		return 0, false
	}
	return since, true
}

func probe(f func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if f != nil {
			if err := f(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}
