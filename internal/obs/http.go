package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Health wires liveness and readiness probes into the admin handler. A nil
// probe always passes.
type Health struct {
	// Healthy failing (non-nil error) flips /healthz to 503 — wired to the
	// replica's sticky DurabilityErr: a poisoned journal means the process
	// must be replaced, not retried.
	Healthy func() error
	// Ready failing flips /readyz to 503 — the replica is alive but not
	// serving at the cluster head yet (state transfer in progress).
	Ready func() error
}

// NewHandler returns the admin HTTP handler:
//
//	/metrics      Prometheus text exposition of reg
//	/healthz      liveness probe (503 once durability is poisoned)
//	/readyz       readiness probe (503 until caught up and journaling)
//	/debug/trace  lifecycle tracer ring dump
//	/debug/pprof  Go runtime profiles
func NewHandler(reg *Registry, tr *Tracer, h Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", probe(h.Healthy))
	mux.HandleFunc("/readyz", probe(h.Ready))
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if tr == nil {
			fmt.Fprintln(w, "trace: tracing disabled")
			return
		}
		tr.WriteText(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func probe(f func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if f != nil {
			if err := f(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}
