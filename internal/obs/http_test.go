package obs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/flight"
)

// validatePrometheusText checks a /metrics body against the Prometheus text
// exposition format (version 0.0.4): comment grammar, metric and label name
// charsets, float-parsable sample values, TYPE-before-samples ordering, and
// histogram invariants (cumulative buckets, +Inf bucket equal to _count).
func validatePrometheusText(t *testing.T, body string) {
	t.Helper()
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
		labelPair  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	)
	typed := map[string]string{}     // family -> TYPE
	bucketCum := map[string]uint64{} // series labels (sans le) -> last cumulative bucket
	infBucket := map[string]uint64{}
	counts := map[string]uint64{}
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricName.MatchString(name) {
				t.Fatalf("line %d: bad HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricName.MatchString(fields[0]) {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			typed[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			// free-form comment: fine
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample line: %q", ln+1, line)
			}
			name, labels, value := m[1], m[3], m[4]
			fam := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typed[base] == "histogram" {
					fam = base
				}
			}
			if _, ok := typed[fam]; !ok {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			var le string
			var rest []string
			if labels != "" {
				for _, pair := range strings.Split(labels, ",") {
					if !labelPair.MatchString(pair) {
						t.Fatalf("line %d: bad label pair %q", ln+1, pair)
					}
					if v, ok := strings.CutPrefix(pair, "le="); ok {
						le = strings.Trim(v, `"`)
					} else {
						rest = append(rest, pair)
					}
				}
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
			}
			if typed[fam] == "histogram" {
				key := fam + "|" + strings.Join(rest, ",")
				switch {
				case strings.HasSuffix(name, "_bucket"):
					if le == "" {
						t.Fatalf("line %d: bucket without le label", ln+1)
					}
					if uint64(v) < bucketCum[key] {
						t.Fatalf("line %d: bucket not cumulative", ln+1)
					}
					bucketCum[key] = uint64(v)
					if le == "+Inf" {
						infBucket[key] = uint64(v)
					}
				case strings.HasSuffix(name, "_count"):
					counts[key] = uint64(v)
				}
			}
		}
	}
	for key, c := range counts {
		if inf, ok := infBucket[key]; !ok || inf != c {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", key, infBucket[key], c)
		}
	}
}

func scrape(t *testing.T, reg *Registry, tr *Tracer, h Health, path string) (int, string) {
	t.Helper()
	return scrapeFlight(t, reg, tr, nil, h, path)
}

func scrapeFlight(t *testing.T, reg *Registry, tr *Tracer, fr *flight.Recorder, h Health, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(reg, tr, fr, h))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointParses(t *testing.T) {
	reg := NewRegistry()
	m := NewNodeMetrics(reg, 128, 1)
	m.Requests.Add(42)
	m.Decided.Add(7)
	m.ObserveStage(StageConsensus, 800*time.Microsecond)
	m.ObserveStage(StageConsensus, 3*time.Millisecond)
	m.ObserveStage(StageAck, 12*time.Millisecond)
	m.WALFsync.Observe(2 * time.Millisecond)
	reg.Gauge("queue_depth", `peer="2"`, "outbound queue").Set(17)
	reg.CounterFunc("poll_total", "", "polled counter", func() float64 { return 1234 })
	reg.GaugeFunc("fractional", "", "non-integral value", func() float64 { return 0.375 })

	code, body := scrape(t, reg, m.Tracer, Health{}, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	validatePrometheusText(t, body)

	for _, want := range []string{
		"# TYPE rcc_stage_latency_seconds histogram",
		`rcc_stage_latency_seconds_bucket{stage="consensus",le="+Inf"} 2`,
		`rcc_stage_latency_seconds_count{stage="consensus"} 2`,
		"rcc_requests_total 42",
		"rcc_rounds_decided_total 7",
		`queue_depth{peer="2"} 17`,
		"poll_total 1234",
		"fractional 0.375",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsGolden pins the exact exposition of a small registry — the
// renderer must not drift, since downstream scrapers parse this by grammar.
func TestMetricsGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "", "requests seen").Add(3)
	reg.Gauge("depth", `peer="1"`, "queue depth").Set(-2)
	h := reg.Histogram("lat_seconds", `stage="x"`, "latency")
	h.Observe(500 * time.Nanosecond) // bucket le=1e-06
	h.Observe(3 * time.Microsecond)  // bucket le=4e-06
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		"# HELP req_total requests seen",
		"# TYPE req_total counter",
		"req_total 3",
		"# HELP depth queue depth",
		"# TYPE depth gauge",
		`depth{peer="1"} -2`,
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="1e-06"} 1`,
		`lat_seconds_bucket{stage="x",le="2e-06"} 1`,
		`lat_seconds_bucket{stage="x",le="4e-06"} 2`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("golden prefix mismatch:\n--- want prefix ---\n%s--- got ---\n%s", want, got)
	}
	tail := []string{
		`lat_seconds_bucket{stage="x",le="+Inf"} 2`,
		`lat_seconds_sum{stage="x"} 3.5e-06`,
		`lat_seconds_count{stage="x"} 2`,
	}
	for _, line := range tail {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("golden missing line %q in:\n%s", line, got)
		}
	}
	validatePrometheusText(t, got)
}

func TestHealthEndpoints(t *testing.T) {
	var healthyErr, readyErr error
	health := Health{
		Healthy: func() error { return healthyErr },
		Ready:   func() error { return readyErr },
	}
	reg := NewRegistry()

	if code, body := scrape(t, reg, nil, health, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := scrape(t, reg, nil, health, "/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	readyErr = errors.New("state transfer in progress")
	if code, body := scrape(t, reg, nil, health, "/readyz"); code != 503 || !strings.Contains(body, "state transfer") {
		t.Fatalf("/readyz = %d %q, want 503 with reason", code, body)
	}
	if code, _ := scrape(t, reg, nil, health, "/healthz"); code != 200 {
		t.Fatal("/healthz must stay 200 while only readiness fails")
	}

	healthyErr = fmt.Errorf("wal: %w", errors.New("fsync failed"))
	if code, body := scrape(t, reg, nil, health, "/healthz"); code != 503 || !strings.Contains(body, "fsync failed") {
		t.Fatalf("/healthz = %d %q, want 503 with cause", code, body)
	}
}

func TestTraceAndPprofEndpoints(t *testing.T) {
	tr := NewTracer(16, 1)
	tr.Record(9, 1, PointArrive)
	tr.Record(9, 1, PointAck)
	if code, body := scrape(t, NewRegistry(), tr, Health{}, "/debug/trace"); code != 200 || !strings.Contains(body, "client=9 seq=1") {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	if code, body := scrape(t, NewRegistry(), nil, Health{}, "/debug/trace"); code != 200 || !strings.Contains(body, "disabled") {
		t.Fatalf("/debug/trace (no tracer) = %d %q", code, body)
	}
	if code, body := scrape(t, NewRegistry(), nil, Health{}, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// nextCursor extracts the trailing "next=<cursor>" line a ring dump ends
// with — the value a poller passes back as ?since=.
func nextCursor(t *testing.T, body string) uint64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^next=(\d+)$`).FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("dump carries no next= cursor:\n%s", body)
	}
	n, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTraceSinceCursor(t *testing.T) {
	tr := NewTracer(16, 1)
	tr.Record(1, 1, PointArrive)
	tr.Record(1, 1, PointDecide)

	code, body := scrape(t, NewRegistry(), tr, Health{}, "/debug/trace")
	if code != 200 || !strings.Contains(body, "client=1 seq=1") {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	cur := nextCursor(t, body)
	if cur != 2 {
		t.Fatalf("cursor = %d, want 2", cur)
	}

	// Polling at the cursor returns nothing new but repeats the cursor.
	_, body = scrape(t, NewRegistry(), tr, Health{}, fmt.Sprintf("/debug/trace?since=%d", cur))
	if !strings.Contains(body, "no sampled events") || nextCursor(t, body) != cur {
		t.Fatalf("poll at head = %q", body)
	}

	// New events after the cursor show up in the incremental poll.
	tr.Record(2, 7, PointAck)
	_, body = scrape(t, NewRegistry(), tr, Health{}, fmt.Sprintf("/debug/trace?since=%d", cur))
	if !strings.Contains(body, "client=2 seq=7") || strings.Contains(body, "client=1 seq=1") {
		t.Fatalf("incremental poll = %q", body)
	}

	if code, _ := scrape(t, NewRegistry(), tr, Health{}, "/debug/trace?since=banana"); code != 400 {
		t.Fatalf("bad cursor accepted: %d", code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	fr := flight.New(64)
	fr.Record(2, flight.SubPBFT, flight.KViewChangeStart, 1, 3, 0, 0)
	fr.Record(2, flight.SubTransport, flight.KDemote, 0, 0, 0, 1)

	code, body := scrapeFlight(t, NewRegistry(), nil, fr, Health{}, "/debug/events")
	if code != 200 || !strings.Contains(body, "view_change_start") || !strings.Contains(body, "demote") {
		t.Fatalf("/debug/events = %d %q", code, body)
	}
	cur := nextCursor(t, body)

	// Incremental poll: only events after the cursor.
	fr.Record(2, flight.SubTransport, flight.KReconnect, 0, 0, 0, 1)
	_, body = scrapeFlight(t, NewRegistry(), nil, fr, Health{}, fmt.Sprintf("/debug/events?since=%d", cur))
	if !strings.Contains(body, "reconnect") || strings.Contains(body, "view_change_start") {
		t.Fatalf("incremental events poll = %q", body)
	}

	// Binary format parses back through the flight codec.
	_, body = scrapeFlight(t, NewRegistry(), nil, fr, Health{}, "/debug/events?format=bin")
	snap, err := flight.DecodeBinary(bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Events) != 3 || snap.Events[2].Kind != flight.KReconnect {
		t.Fatalf("binary events dump = %+v", snap)
	}

	if code, _ := scrapeFlight(t, NewRegistry(), nil, fr, Health{}, "/debug/events?since=nope"); code != 400 {
		t.Fatalf("bad cursor accepted: %d", code)
	}
	if _, body := scrapeFlight(t, NewRegistry(), nil, nil, Health{}, "/debug/events"); !strings.Contains(body, "disabled") {
		t.Fatalf("nil recorder dump = %q", body)
	}
}

func TestRuntimeSelfMetrics(t *testing.T) {
	reg := NewRegistry()
	NewNodeMetrics(reg, 0, -1)
	code, body := scrape(t, reg, nil, Health{}, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	validatePrometheusText(t, body)
	for _, want := range []string{"go_goroutines", "go_heap_inuse_bytes", "go_gc_pause_p99_seconds", "go_gomaxprocs", "rcc_build_info{goversion="} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Goroutine count and heap in use must be live, non-zero values.
	for _, gauge := range []string{"go_goroutines", "go_heap_inuse_bytes"} {
		m := regexp.MustCompile(`(?m)^` + gauge + ` (\S+)$`).FindStringSubmatch(body)
		if m == nil {
			t.Errorf("%s sample line missing", gauge)
			continue
		}
		if v, err := strconv.ParseFloat(m[1], 64); err != nil || v <= 0 {
			t.Errorf("%s = %q, want positive number", gauge, m[1])
		}
	}
}
