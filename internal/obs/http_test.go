package obs

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// validatePrometheusText checks a /metrics body against the Prometheus text
// exposition format (version 0.0.4): comment grammar, metric and label name
// charsets, float-parsable sample values, TYPE-before-samples ordering, and
// histogram invariants (cumulative buckets, +Inf bucket equal to _count).
func validatePrometheusText(t *testing.T, body string) {
	t.Helper()
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
		labelPair  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
	)
	typed := map[string]string{}     // family -> TYPE
	bucketCum := map[string]uint64{} // series labels (sans le) -> last cumulative bucket
	infBucket := map[string]uint64{}
	counts := map[string]uint64{}
	if !strings.HasSuffix(body, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricName.MatchString(name) {
				t.Fatalf("line %d: bad HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !metricName.MatchString(fields[0]) {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, fields[1])
			}
			if _, dup := typed[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			typed[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			// free-form comment: fine
		case line == "":
			t.Fatalf("line %d: blank line in exposition", ln+1)
		default:
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: bad sample line: %q", ln+1, line)
			}
			name, labels, value := m[1], m[3], m[4]
			fam := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typed[base] == "histogram" {
					fam = base
				}
			}
			if _, ok := typed[fam]; !ok {
				t.Fatalf("line %d: sample %s before its TYPE", ln+1, name)
			}
			var le string
			var rest []string
			if labels != "" {
				for _, pair := range strings.Split(labels, ",") {
					if !labelPair.MatchString(pair) {
						t.Fatalf("line %d: bad label pair %q", ln+1, pair)
					}
					if v, ok := strings.CutPrefix(pair, "le="); ok {
						le = strings.Trim(v, `"`)
					} else {
						rest = append(rest, pair)
					}
				}
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
			}
			if typed[fam] == "histogram" {
				key := fam + "|" + strings.Join(rest, ",")
				switch {
				case strings.HasSuffix(name, "_bucket"):
					if le == "" {
						t.Fatalf("line %d: bucket without le label", ln+1)
					}
					if uint64(v) < bucketCum[key] {
						t.Fatalf("line %d: bucket not cumulative", ln+1)
					}
					bucketCum[key] = uint64(v)
					if le == "+Inf" {
						infBucket[key] = uint64(v)
					}
				case strings.HasSuffix(name, "_count"):
					counts[key] = uint64(v)
				}
			}
		}
	}
	for key, c := range counts {
		if inf, ok := infBucket[key]; !ok || inf != c {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", key, infBucket[key], c)
		}
	}
}

func scrape(t *testing.T, reg *Registry, tr *Tracer, h Health, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(reg, tr, h))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointParses(t *testing.T) {
	reg := NewRegistry()
	m := NewNodeMetrics(reg, 128, 1)
	m.Requests.Add(42)
	m.Decided.Add(7)
	m.ObserveStage(StageConsensus, 800*time.Microsecond)
	m.ObserveStage(StageConsensus, 3*time.Millisecond)
	m.ObserveStage(StageAck, 12*time.Millisecond)
	m.WALFsync.Observe(2 * time.Millisecond)
	reg.Gauge("queue_depth", `peer="2"`, "outbound queue").Set(17)
	reg.CounterFunc("poll_total", "", "polled counter", func() float64 { return 1234 })
	reg.GaugeFunc("fractional", "", "non-integral value", func() float64 { return 0.375 })

	code, body := scrape(t, reg, m.Tracer, Health{}, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	validatePrometheusText(t, body)

	for _, want := range []string{
		"# TYPE rcc_stage_latency_seconds histogram",
		`rcc_stage_latency_seconds_bucket{stage="consensus",le="+Inf"} 2`,
		`rcc_stage_latency_seconds_count{stage="consensus"} 2`,
		"rcc_requests_total 42",
		"rcc_rounds_decided_total 7",
		`queue_depth{peer="2"} 17`,
		"poll_total 1234",
		"fractional 0.375",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsGolden pins the exact exposition of a small registry — the
// renderer must not drift, since downstream scrapers parse this by grammar.
func TestMetricsGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "", "requests seen").Add(3)
	reg.Gauge("depth", `peer="1"`, "queue depth").Set(-2)
	h := reg.Histogram("lat_seconds", `stage="x"`, "latency")
	h.Observe(500 * time.Nanosecond) // bucket le=1e-06
	h.Observe(3 * time.Microsecond)  // bucket le=4e-06
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		"# HELP req_total requests seen",
		"# TYPE req_total counter",
		"req_total 3",
		"# HELP depth queue depth",
		"# TYPE depth gauge",
		`depth{peer="1"} -2`,
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="1e-06"} 1`,
		`lat_seconds_bucket{stage="x",le="2e-06"} 1`,
		`lat_seconds_bucket{stage="x",le="4e-06"} 2`,
	}, "\n") + "\n"
	if !strings.HasPrefix(got, want) {
		t.Fatalf("golden prefix mismatch:\n--- want prefix ---\n%s--- got ---\n%s", want, got)
	}
	tail := []string{
		`lat_seconds_bucket{stage="x",le="+Inf"} 2`,
		`lat_seconds_sum{stage="x"} 3.5e-06`,
		`lat_seconds_count{stage="x"} 2`,
	}
	for _, line := range tail {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("golden missing line %q in:\n%s", line, got)
		}
	}
	validatePrometheusText(t, got)
}

func TestHealthEndpoints(t *testing.T) {
	var healthyErr, readyErr error
	health := Health{
		Healthy: func() error { return healthyErr },
		Ready:   func() error { return readyErr },
	}
	reg := NewRegistry()

	if code, body := scrape(t, reg, nil, health, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := scrape(t, reg, nil, health, "/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	readyErr = errors.New("state transfer in progress")
	if code, body := scrape(t, reg, nil, health, "/readyz"); code != 503 || !strings.Contains(body, "state transfer") {
		t.Fatalf("/readyz = %d %q, want 503 with reason", code, body)
	}
	if code, _ := scrape(t, reg, nil, health, "/healthz"); code != 200 {
		t.Fatal("/healthz must stay 200 while only readiness fails")
	}

	healthyErr = fmt.Errorf("wal: %w", errors.New("fsync failed"))
	if code, body := scrape(t, reg, nil, health, "/healthz"); code != 503 || !strings.Contains(body, "fsync failed") {
		t.Fatalf("/healthz = %d %q, want 503 with cause", code, body)
	}
}

func TestTraceAndPprofEndpoints(t *testing.T) {
	tr := NewTracer(16, 1)
	tr.Record(9, 1, PointArrive)
	tr.Record(9, 1, PointAck)
	if code, body := scrape(t, NewRegistry(), tr, Health{}, "/debug/trace"); code != 200 || !strings.Contains(body, "client=9 seq=1") {
		t.Fatalf("/debug/trace = %d %q", code, body)
	}
	if code, body := scrape(t, NewRegistry(), nil, Health{}, "/debug/trace"); code != 200 || !strings.Contains(body, "disabled") {
		t.Fatalf("/debug/trace (no tracer) = %d %q", code, body)
	}
	if code, body := scrape(t, NewRegistry(), nil, Health{}, "/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
