package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of histogram buckets. Bucket i < histBuckets-1
// holds observations ≤ 1µs·2^i (1µs, 2µs, 4µs, … ~67s); the last bucket is
// +Inf. Powers of two keep the index computation branch-free on the hot
// path (one bits.Len64) while covering six decades of latency at ≤2x
// resolution — plenty for p50/p95/p99 on paths spanning microsecond sends
// to multi-second fsync stalls.
const histBuckets = 28

// Histogram is a fixed-shape, log-bucketed latency histogram. Observe is
// lock-free and allocation-free (two atomic adds plus a CAS max), safe for
// any number of concurrent writers. A nil Histogram is a valid no-op sink.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, clamped to the +Inf bucket.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	us := (uint64(d) + 999) / 1000 // ceil to whole microseconds
	i := bits.Len64(us - 1)
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// bucketBound returns bucket i's inclusive upper bound in seconds.
func bucketBound(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1e6
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count         uint64
	Sum           time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Mean returns the average observation, zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot summarizes the histogram. Concurrent observers may land between
// the bucket loads — each load is atomic, so the result is a consistent
// lower bound, never corrupt.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: total,
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if total == 0 {
		return s
	}
	s.P50 = quantile(&counts, total, s.Max, 0.50)
	s.P95 = quantile(&counts, total, s.Max, 0.95)
	s.P99 = quantile(&counts, total, s.Max, 0.99)
	return s
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket holding the target rank. The +Inf bucket's upper edge is the
// observed max.
func quantile(counts *[histBuckets]uint64, total uint64, max time.Duration, q float64) time.Duration {
	rank := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		c := float64(counts[i])
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = bucketBound(i - 1)
		}
		upper := bucketBound(i)
		if i == histBuckets-1 || time.Duration(upper*1e9) > max {
			if m := max.Seconds(); m > lower {
				upper = m
			}
		}
		frac := (rank - cum) / c
		return time.Duration((lower + (upper-lower)*frac) * 1e9)
	}
	return max
}

// writeProm renders the histogram as cumulative Prometheus buckets in
// seconds, plus _sum and _count.
func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < histBuckets-1 {
			le = formatFloat(bucketBound(i))
		}
		l := `le="` + le + `"`
		if labels != "" {
			l = labels + "," + l
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, l, cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(labels), formatFloat(time.Duration(h.sum.Load()).Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), cum)
}
