package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", "help")
	g := reg.Gauge("g", "", "help")
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var m *NodeMetrics
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	tr.Record(1, 1, PointArrive)
	m.Trace(1, 1, PointArrive)
	m.ObserveStage(StageAck, time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 || tr.Sampled(1, 1) || m.Stage(StageAck) != nil || m.Tracing() {
		t.Fatal("nil instruments must be inert")
	}
	var zero NodeMetrics
	zero.Requests.Inc()
	zero.ObserveStage(StageExecute, time.Second)
	zero.Trace(1, 1, PointAck)
	if zero.Requests.Value() != 0 {
		t.Fatal("zero-value NodeMetrics must be a no-op sink")
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if b := bucketBound(10); b != 1024e-6 {
		t.Errorf("bucketBound(10) = %v, want 1.024ms", b)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 100 observations: 1ms ... 100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := 5050 * time.Millisecond; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v, want 100ms", s.Max)
	}
	// Log bucketing bounds the estimate to one bucket's width: each true
	// quantile must fall within (bucket_lower/2, bucket_upper*2].
	checks := []struct {
		name      string
		got, true time.Duration
	}{
		{"p50", s.P50, 50 * time.Millisecond},
		{"p95", s.P95, 95 * time.Millisecond},
		{"p99", s.P99, 99 * time.Millisecond},
	}
	for _, c := range checks {
		if c.got < c.true/2 || c.got > c.true*2 {
			t.Errorf("%s = %v, want within 2x of %v", c.name, c.got, c.true)
		}
	}
	if s.Mean() != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", s.Mean())
	}
}

// TestHistogramConcurrent hammers one histogram from many writers while a
// reader snapshots — correctness is checked on the final totals, and the
// race detector checks the synchronization.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.P99 > s.Max {
					t.Error("p99 above max")
					return
				}
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(i%1000+w) * time.Microsecond)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if want := uint64(writers * perWriter); s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	var wantSum time.Duration
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			wantSum += time.Duration(i%1000+w) * time.Microsecond
		}
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if want := time.Duration(999+writers-1) * time.Microsecond; s.Max != want {
		t.Fatalf("max = %v, want %v", s.Max, want)
	}
}

func TestTracerSamplingAndRing(t *testing.T) {
	tr := NewTracer(8, 1) // sample everything, tiny ring
	for i := uint64(0); i < 12; i++ {
		tr.Record(1, i, PointArrive)
	}
	evs := tr.Dump()
	if len(evs) != 8 {
		t.Fatalf("ring holds %d events, want 8", len(evs))
	}
	if evs[0].Seq != 4 || evs[7].Seq != 11 {
		t.Fatalf("ring kept seqs %d..%d, want 4..11", evs[0].Seq, evs[7].Seq)
	}

	sampled := NewTracer(64, 16)
	hits := 0
	for seq := uint64(0); seq < 16000; seq++ {
		if sampled.Sampled(3, seq) {
			hits++
		}
	}
	// 1-in-16 hash sampling over 16k seqs: expect ~1000, allow wide slack.
	if hits < 500 || hits > 1500 {
		t.Fatalf("sampled %d of 16000 at 1-in-16", hits)
	}
	// The decision must be stable: every stage sees the same verdict.
	if sampled.Sampled(3, 77) != sampled.Sampled(3, 77) {
		t.Fatal("sampling not deterministic")
	}
}

func TestTracerWriteText(t *testing.T) {
	tr := NewTracer(16, 1)
	tr.Record(2, 5, PointArrive)
	tr.Record(2, 5, PointDecide)
	tr.Record(2, 5, PointAck)
	var sb strings.Builder
	tr.WriteText(&sb)
	out := sb.String()
	for _, want := range []string{"client=2 seq=5", "arrive+", "decide+", "ack+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace dump missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryPanicsOnConflict(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "", "h")
	mustPanic(t, "duplicate series", func() { reg.Counter("x_total", "", "h") })
	mustPanic(t, "kind conflict", func() { reg.Gauge("x_total", "", "h") })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestStageNames(t *testing.T) {
	want := []string{"verify", "consensus", "unify", "execute", "journal", "ack"}
	stages := Stages()
	if len(stages) != len(want) {
		t.Fatalf("%d stages, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.String() != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s, want[i])
		}
	}
}
