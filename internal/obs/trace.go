package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// TracePoint is one stamp in a transaction's lifecycle.
type TracePoint uint8

const (
	// PointArrive: client request admitted by a consensus instance
	// (post-dedup).
	PointArrive TracePoint = iota
	// PointAssign: request routed to its BCA instance (rcc).
	PointAssign
	// PointPropose: the round carrying the request was proposed
	// (pre-prepare seen).
	PointPropose
	// PointDecide: the round committed and was delivered by consensus.
	PointDecide
	// PointExecute: the batch was applied to the application.
	PointExecute
	// PointDurable: the journal record covering the batch was fsync'd.
	PointDurable
	// PointAck: client replies for the batch were enqueued.
	PointAck

	numTracePoints
)

var pointNames = [numTracePoints]string{
	"arrive", "assign", "propose", "decide", "execute", "durable", "ack",
}

func (p TracePoint) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// TraceEvent is one recorded lifecycle stamp.
type TraceEvent struct {
	Client uint64
	Seq    uint64
	Point  TracePoint
	At     time.Time
}

// Tracer records lifecycle stamps for a deterministic 1-in-N sample of
// transactions into a fixed-size ring buffer, dumpable on demand via
// /debug/trace. Sampled is a pure arithmetic check with no synchronization,
// so the unsampled hot path pays a few nanoseconds and zero allocations;
// only sampled events take the ring's mutex. A nil Tracer records nothing.
type Tracer struct {
	sample uint64

	mu   sync.Mutex
	buf  []TraceEvent
	next uint64 // total events recorded; next slot is next % len(buf)
}

// NewTracer returns a tracer holding size events, sampling one transaction
// in sampleN (1 = every transaction).
func NewTracer(size, sampleN int) *Tracer {
	if size <= 0 {
		size = 4096
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &Tracer{sample: uint64(sampleN), buf: make([]TraceEvent, size)}
}

// Sampled reports whether the transaction (client, seq) is in the sample.
// The decision is a stateless hash, so every replica — and every stage on
// one replica — samples the same transactions.
func (t *Tracer) Sampled(client, seq uint64) bool {
	if t == nil {
		return false
	}
	if t.sample <= 1 {
		return true
	}
	h := (client + 1) * 0x9E3779B97F4A7C15
	h ^= (seq + 1) * 0xBF58476D1CE4E5B9
	h ^= h >> 29
	return h%t.sample == 0
}

// Record stamps point for the transaction if it is sampled.
func (t *Tracer) Record(client, seq uint64, p TracePoint) {
	if t == nil || !t.Sampled(client, seq) {
		return
	}
	ev := TraceEvent{Client: client, Seq: seq, Point: p, At: time.Now()}
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = ev
	t.next++
	t.mu.Unlock()
}

// Dump returns the buffered events, oldest first.
func (t *Tracer) Dump() []TraceEvent {
	events, _ := t.DumpSince(0)
	return events
}

// DumpSince returns the buffered events with ring index >= since, oldest
// first, plus the cursor to pass as since on the next call.
//
// Cursor contract (shared with the flight recorder's /debug/events):
// the cursor is the total number of events ever recorded, not a ring
// offset. DumpSince(0) returns the whole retained ring; DumpSince(next)
// with the cursor from the previous call returns only events recorded
// after it. Events that fell off the ring between polls are silently
// gone — a poller that lags more than the ring size misses them, and can
// detect the gap because the first returned event's implied index
// (next - len(events)) exceeds its cursor.
func (t *Tracer) DumpSince(since uint64) ([]TraceEvent, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	size := uint64(len(t.buf))
	lo := since
	if n > size && lo < n-size {
		lo = n - size
	}
	if lo >= n {
		return nil, n
	}
	out := make([]TraceEvent, 0, n-lo)
	for i := lo; i < n; i++ {
		out = append(out, t.buf[i%size])
	}
	return out, n
}

// WriteText renders the whole retained ring; see WriteTextSince.
func (t *Tracer) WriteText(w io.Writer) {
	t.WriteTextSince(w, 0)
}

// WriteTextSince renders the ring events after the given cursor, grouped
// by transaction, each stamp shown as a delta from the transaction's first
// recorded stamp. The trailing "next=<cursor>" line carries the cursor for
// the next poll (the ?since= parameter on /debug/trace).
func (t *Tracer) WriteTextSince(w io.Writer, since uint64) {
	events, next := t.DumpSince(since)
	if len(events) == 0 {
		fmt.Fprintln(w, "trace: no sampled events recorded")
		fmt.Fprintf(w, "next=%d\n", next)
		return
	}
	type key struct{ client, seq uint64 }
	order := make([]key, 0, 64)
	grouped := make(map[key][]TraceEvent, 64)
	for _, ev := range events {
		k := key{ev.Client, ev.Seq}
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], ev)
	}
	fmt.Fprintf(w, "trace: %d events, %d transactions (1 in %d sampled)\n", len(events), len(order), t.sample)
	for _, k := range order {
		evs := grouped[k]
		base := evs[0].At
		fmt.Fprintf(w, "client=%d seq=%d  %s", k.client, k.seq, base.Format("15:04:05.000000"))
		for _, ev := range evs {
			fmt.Fprintf(w, "  %s+%s", ev.Point, ev.At.Sub(base).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "next=%d\n", next)
}
