package flight

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordDumpRoundtrip(t *testing.T) {
	r := New(64)
	r.Record(2, SubPBFT, KViewChangeStart, 3, 7, 0, 0)
	r.Record(2, SubRCC, KInstanceDecide, 1, 0, 42, 0)
	r.Record(2, SubTransport, KDemote, 0, 0, 0, 3)

	snap := r.Dump(0)
	if len(snap.Events) != 3 || snap.Next != 3 || snap.FirstSeq != 0 {
		t.Fatalf("dump = %d events, cursor [%d,%d), want 3 events [0,3)", len(snap.Events), snap.FirstSeq, snap.Next)
	}
	e := snap.Events[0]
	if e.Replica != 2 || e.Sub != SubPBFT || e.Kind != KViewChangeStart || e.Instance != 3 || e.View != 7 {
		t.Fatalf("event 0 fields scrambled: %+v", e)
	}
	if e := snap.Events[2]; e.Kind != KDemote || e.Detail != 3 {
		t.Fatalf("event 2 fields scrambled: %+v", e)
	}
	// Monotone timestamps within one writer.
	if snap.Events[0].Mono > snap.Events[2].Mono {
		t.Fatalf("mono went backwards: %d > %d", snap.Events[0].Mono, snap.Events[2].Mono)
	}
}

func TestDumpSinceCursor(t *testing.T) {
	r := New(64)
	for i := 0; i < 5; i++ {
		r.Record(0, SubRCC, KInstanceDecide, 0, 0, uint64(i), 0)
	}
	first := r.Dump(0)
	if first.Next != 5 {
		t.Fatalf("cursor = %d, want 5", first.Next)
	}
	empty := r.Dump(first.Next)
	if len(empty.Events) != 0 || empty.Next != 5 {
		t.Fatalf("dump at head returned %d events, cursor %d", len(empty.Events), empty.Next)
	}
	r.Record(0, SubRCC, KWaveUnify, 0, 0, 9, 0)
	inc := r.Dump(first.Next)
	if len(inc.Events) != 1 || inc.Events[0].Seq != 9 || inc.Next != 6 {
		t.Fatalf("incremental dump = %+v", inc)
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(16) // already a power of two
	for i := 0; i < 100; i++ {
		r.Record(0, SubRCC, KInstanceDecide, 0, 0, uint64(i), 0)
	}
	snap := r.Dump(0)
	if len(snap.Events) != 16 {
		t.Fatalf("wrapped ring dumped %d events, want 16", len(snap.Events))
	}
	if snap.FirstSeq != 84 || snap.Next != 100 {
		t.Fatalf("cursor window [%d,%d), want [84,100)", snap.FirstSeq, snap.Next)
	}
	for i, e := range snap.Events {
		if e.Seq != uint64(84+i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, 84+i)
		}
	}
}

// TestConcurrentRecordDump hammers the ring from many writers while a
// reader dumps continuously: must be race-detector-clean and never yield a
// torn event (writer id and payload are packed redundantly and must agree).
func TestConcurrentRecordDump(t *testing.T) {
	r := New(256)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(writers)
	for wr := 0; wr < writers; wr++ {
		go func(id uint16) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// seq and detail both carry the writer id so a torn slot
				// (one writer's seq, another's detail) is detectable.
				r.Record(id, SubTransport, KOverflowDrop, uint32(id), 0, uint64(id), uint64(id))
			}
		}(uint16(wr))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var since uint64
		for {
			snap := r.Dump(since)
			since = snap.Next
			for _, e := range snap.Events {
				if e.Seq != uint64(e.Replica) || e.Detail != uint64(e.Replica) || e.Instance != uint32(e.Replica) {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	if head := r.Head(); head != writers*perWriter {
		t.Fatalf("head = %d, want %d", head, writers*perWriter)
	}
}

func TestNilRecorderNoop(t *testing.T) {
	var r *Recorder
	r.Record(0, SubRCC, KVoid, 0, 0, 0, 0) // must not panic
	if r.Head() != 0 {
		t.Fatal("nil recorder has a head")
	}
	snap := r.Dump(0)
	if len(snap.Events) != 0 {
		t.Fatal("nil recorder dumped events")
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	r := New(64)
	r.Record(1, SubStateSync, KOfferReject, 0, 0, 17, uint64(RejectDigest))
	r.Record(1, SubStore, KFsyncStall, 0, 0, 0, uint64(25*time.Millisecond))
	snap := r.Dump(0)
	snap.Replica = 1

	var buf bytes.Buffer
	if err := EncodeBinary(&buf, snap); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Replica != 1 || got.Next != snap.Next || got.AnchorWall != snap.AnchorWall || got.AnchorMono != snap.AnchorMono {
		t.Fatalf("header mismatch: %+v vs %+v", got, snap)
	}
	if len(got.Events) != 2 || got.Events[0] != snap.Events[0] || got.Events[1] != snap.Events[1] {
		t.Fatalf("events mismatch: %+v vs %+v", got.Events, snap.Events)
	}
	// Wall-time resolution must agree before and after the roundtrip.
	if !got.WallTime(got.Events[0]).Equal(snap.WallTime(snap.Events[0])) {
		t.Fatal("wall time drifted through the codec")
	}
}

func TestDecodeTruncatedTail(t *testing.T) {
	r := New(64)
	for i := 0; i < 4; i++ {
		r.Record(0, SubRCC, KInstanceDecide, 0, 0, uint64(i), 0)
	}
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, r.Dump(0)); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-recordSize-7] // last record gone, third partial
	got, err := DecodeBinary(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Fatalf("truncated decode kept %d events, want 2", len(got.Events))
	}
	if _, err := DecodeBinary(bytes.NewReader([]byte("not a dump at all........"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestWriteFileReadFile(t *testing.T) {
	r := New(64)
	r.Record(3, SubRuntime, KLoopStall, 0, 0, 0, uint64(120*time.Millisecond))
	path := filepath.Join(t.TempDir(), FileName)
	if err := r.WriteFile(path, 3); err != nil {
		t.Fatal(err)
	}
	// The tmp file must not linger.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Replica != 3 || len(snap.Events) != 1 || snap.Events[0].Kind != KLoopStall {
		t.Fatalf("file dump = %+v", snap)
	}
}

func TestWriteText(t *testing.T) {
	r := New(64)
	r.Record(0, SubPBFT, KSuspect, 2, 1, 0, 0)
	r.Record(0, SubStateSync, KSyncPhase, 0, 0, 0, uint64(PhaseSnapshot))
	var sb strings.Builder
	WriteText(&sb, r.Dump(0))
	out := sb.String()
	for _, want := range []string{"suspect", "sync_phase", "phase=snapshot", "next=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestRecordAllocFree(t *testing.T) {
	r := New(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(1, SubRCC, KInstanceDecide, 2, 3, 4, 5)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}
