package flight

import (
	"strings"
	"testing"
	"time"
)

// snapAt builds a snapshot whose anchor maps mono offset 0 to base, so
// tests can place events at exact wall times across "replicas" with
// different anchors — the merge must align them anyway.
func snapAt(replica uint16, base time.Time, events ...Event) Snapshot {
	return Snapshot{
		Replica:    replica,
		AnchorWall: base.UnixNano(),
		AnchorMono: 0,
		Events:     events,
	}
}

func TestMergeAlignsSkewedAnchors(t *testing.T) {
	base := time.Unix(1000, 0)
	// Replica 1's wall clock stepped 1h forward before its dump, so its
	// anchor wall is 1h ahead — but the anchor pair was captured at dump
	// time, so its events (stamped only with mono offsets) still resolve
	// to the true instants and interleave with replica 0's.
	a := snapAt(0, base,
		Event{Mono: int64(10 * time.Millisecond), Replica: 0, Sub: SubRCC, Kind: KInstanceDecide, Seq: 1},
		Event{Mono: int64(30 * time.Millisecond), Replica: 0, Sub: SubRCC, Kind: KWaveUnify, Seq: 1},
	)
	b := snapAt(1, base.Add(time.Hour),
		Event{Mono: int64(20*time.Millisecond) - int64(time.Hour), Replica: 1, Sub: SubPBFT, Kind: KSuspect, Instance: 2},
	)
	tl := Merge([]Snapshot{a, b})
	if len(tl) != 3 {
		t.Fatalf("merged %d events, want 3", len(tl))
	}
	want := []Kind{KInstanceDecide, KSuspect, KWaveUnify}
	for i, k := range want {
		if tl[i].Kind != k {
			t.Fatalf("position %d is %s, want %s", i, tl[i].Kind, k)
		}
	}
	if got := tl[1].Wall.Sub(tl[0].Wall); got != 10*time.Millisecond {
		t.Fatalf("cross-replica gap = %s, want 10ms", got)
	}
}

func TestDetectViewChangeStorm(t *testing.T) {
	base := time.Unix(2000, 0)
	var evs []Event
	for i := 0; i < 3; i++ {
		evs = append(evs, Event{
			Mono: int64(i) * int64(time.Second), Replica: 1,
			Sub: SubPBFT, Kind: KViewChangeStart, Instance: 4, View: uint64(i + 1),
		})
	}
	anoms := DetectAnomalies(Merge([]Snapshot{snapAt(1, base, evs...)}))
	if len(anoms) != 1 || anoms[0].Title != "view-change-storm" {
		t.Fatalf("anomalies = %+v, want one view-change-storm", anoms)
	}
	// Same three starts spread over a minute: no storm.
	for i := range evs {
		evs[i].Mono = int64(i) * int64(30*time.Second)
	}
	if anoms := DetectAnomalies(Merge([]Snapshot{snapAt(1, base, evs...)})); len(anoms) != 0 {
		t.Fatalf("spread-out view changes flagged: %+v", anoms)
	}
}

func TestDetectRepeatedDemotionAndStalledWave(t *testing.T) {
	base := time.Unix(3000, 0)
	evs := []Event{
		{Mono: 0, Replica: 0, Sub: SubTransport, Kind: KDemote, Detail: 2},
		{Mono: int64(time.Second), Replica: 0, Sub: SubTransport, Kind: KDemote, Detail: 2},
		// Decisions pile up with no unify for > waveStallGap.
		{Mono: int64(2 * time.Second), Replica: 0, Sub: SubRCC, Kind: KInstanceDecide, Instance: 0, Seq: 5},
		{Mono: int64(3 * time.Second), Replica: 1, Sub: SubRCC, Kind: KInstanceDecide, Instance: 1, Seq: 5},
		{Mono: int64(6 * time.Second), Replica: 0, Sub: SubRCC, Kind: KInstanceDecide, Instance: 0, Seq: 6},
		{Mono: int64(7 * time.Second), Replica: 0, Sub: SubRuntime, Kind: KLoopStall, Detail: uint64(80 * time.Millisecond)},
	}
	anoms := DetectAnomalies(Merge([]Snapshot{snapAt(0, base, evs...)}))
	titles := map[string]bool{}
	for _, a := range anoms {
		titles[a.Title] = true
	}
	for _, want := range []string{"repeated-demotion", "stalled-wave", "loop-stall"} {
		if !titles[want] {
			t.Errorf("missing anomaly %q in %+v", want, anoms)
		}
	}
	// A healthy decide→unify cadence must not trip the wave detector.
	healthy := []Event{
		{Mono: 0, Sub: SubRCC, Kind: KInstanceDecide, Seq: 1},
		{Mono: int64(100 * time.Millisecond), Sub: SubRCC, Kind: KWaveUnify, Seq: 1},
		{Mono: int64(5 * time.Second), Sub: SubRCC, Kind: KInstanceDecide, Seq: 2},
		{Mono: int64(5*time.Second + 100*time.Millisecond), Sub: SubRCC, Kind: KWaveUnify, Seq: 2},
	}
	if anoms := DetectAnomalies(Merge([]Snapshot{snapAt(0, base, healthy...)})); len(anoms) != 0 {
		t.Fatalf("healthy cadence flagged: %+v", anoms)
	}
}

func TestWriteTimeline(t *testing.T) {
	base := time.Unix(4000, 0)
	tl := Merge([]Snapshot{snapAt(0, base,
		Event{Mono: 0, Replica: 0, Sub: SubTransport, Kind: KReconnect, Detail: 3},
		Event{Mono: int64(time.Second), Replica: 0, Sub: SubRuntime, Kind: KLoopStall, Detail: uint64(time.Second)},
	)})
	var sb strings.Builder
	WriteTimeline(&sb, tl, DetectAnomalies(tl))
	out := sb.String()
	for _, want := range []string{"reconnect", "loop_stalled", "!! ", "loop-stall", "anomalies: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
