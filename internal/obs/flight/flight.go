// Package flight is the replica's black-box flight recorder: a lock-free,
// bounded ring of fixed-shape protocol events (view changes, suspicions,
// instance decisions, unification waves, link demotions, fsync stalls,
// statesync phases, loop stalls...) that survives long enough to explain an
// incident after the fact. Counters say "how many"; the flight ring says
// "in what order, across which replicas".
//
// Design constraints, in priority order:
//
//   - Recording must be safe from any goroutine and allocation-free: the
//     hot paths that emit (vote broadcast, decision delivery, the transport
//     read loop) cannot afford a mutex or an interface box. Each ring slot
//     is a stamp plus five packed words, all atomics, written under a
//     ticket from a single atomic counter — no locks anywhere, and clean
//     under the race detector.
//   - Readers never block writers. A dump validates each slot's stamp
//     before and after reading its words and silently drops slots that
//     were overwritten mid-read; with a ring of thousands of slots the
//     window is five word-stores wide, so a torn read costs at most one
//     garbled-then-discarded event, never a crash.
//   - Timestamps must merge across replicas whose wall clocks step. Events
//     carry only the monotonic offset from the recorder's start; every
//     Snapshot carries a fresh (wall, mono) anchor captured at dump time,
//     so wall(e) = AnchorWall - (AnchorMono - e.Mono) is correct even if
//     NTP slewed the wall clock after the process started.
//
// A nil *Recorder is the no-op sink: Record is a single branch, so
// instrumented code needs no conditional plumbing.
package flight

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Sub identifies the subsystem that emitted an event.
type Sub uint8

const (
	SubPBFT      Sub = iota + 1 // per-instance BCA consensus
	SubRCC                      // cross-instance unification / recovery
	SubTransport                // TCP links, auth, queues
	SubStore                    // wal + durable store
	SubStateSync                // checkpoint/block-range transfer
	SubRuntime                  // event loop, watchdog, lifecycle
)

var subNames = map[Sub]string{
	SubPBFT:      "pbft",
	SubRCC:       "rcc",
	SubTransport: "transport",
	SubStore:     "store",
	SubStateSync: "statesync",
	SubRuntime:   "runtime",
}

func (s Sub) String() string {
	if n, ok := subNames[s]; ok {
		return n
	}
	return fmt.Sprintf("sub(%d)", uint8(s))
}

// Kind is the event type within a subsystem. Kinds are globally unique so a
// merged timeline never needs (sub, kind) pairs to disambiguate.
type Kind uint8

const (
	// pbft
	KViewChangeStart Kind = iota + 1 // view change initiated; view = target view
	KViewChangeDone                  // new view installed; view = installed view
	KSuspect                         // instance suspected faulty
	KCheckpointAdopt                 // certified checkpoint body adopted; seq = height

	// rcc
	KInstanceDecide // a BCA instance decided a round; seq = round
	KWaveUnify      // a round delivered in the unified order; seq = round
	KVoid           // rounds voided by a stop decision; seq = resume round
	KRecoveryKick   // recovery state transfer requested; seq = target round

	// transport
	KConnect      // first successful dial to a peer; detail = peer id
	KReconnect    // successful re-dial after a drop; detail = peer id
	KDemote       // link demoted (auth failures or write error); detail = peer id
	KAuthFail     // frame failed authentication; detail = peer id
	KOverflowDrop // message dropped on queue overflow; detail = peer/client id

	// wal / store
	KFsyncStall       // fsync exceeded the stall threshold; detail = latency ns
	KDurabilityPoison // sticky durability failure; journal poisoned
	KSnapshotCommit   // state snapshot committed; seq = height

	// statesync
	KSyncPhase   // phase transition; detail = Phase code
	KOfferReject // snapshot/chunk/range refused; detail = Reject code
	KCkptAttest  // checkpoint-boundary attestation formed; seq = height, detail = shares
	KAttTarget   // attested-checkpoint target adopted by a fetch; seq = snap height

	// runtime
	KLoopStall // consensus event loop stopped draining; detail = stall ns
)

var kindNames = map[Kind]string{
	KViewChangeStart:  "view_change_start",
	KViewChangeDone:   "view_change_done",
	KSuspect:          "suspect",
	KCheckpointAdopt:  "checkpoint_adopt",
	KInstanceDecide:   "instance_decide",
	KWaveUnify:        "wave_unify",
	KVoid:             "void",
	KRecoveryKick:     "recovery_kick",
	KConnect:          "connect",
	KReconnect:        "reconnect",
	KDemote:           "demote",
	KAuthFail:         "auth_fail",
	KOverflowDrop:     "overflow_drop",
	KFsyncStall:       "fsync_stall",
	KDurabilityPoison: "durability_poison",
	KSnapshotCommit:   "snapshot_commit",
	KSyncPhase:        "sync_phase",
	KOfferReject:      "offer_reject",
	KCkptAttest:       "ckpt_attest",
	KAttTarget:        "att_target",
	KLoopStall:        "loop_stalled",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Phase codes carried in KSyncPhase's detail word.
type Phase uint8

const (
	PhaseProbe    Phase = iota + 1 // probing peers for their head
	PhaseBehind                    // confirmed behind; transfer starting
	PhaseSnapshot                  // fetching snapshot chunks
	PhaseRange                     // fetching block ranges
	PhaseInstall                   // installing transferred state
	PhaseSynced                    // caught up to the cluster head
)

var phaseNames = map[Phase]string{
	PhaseProbe:    "probe",
	PhaseBehind:   "behind",
	PhaseSnapshot: "snapshot",
	PhaseRange:    "range",
	PhaseInstall:  "install",
	PhaseSynced:   "synced",
}

func (p Phase) String() string {
	if n, ok := phaseNames[p]; ok {
		return n
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Reject codes carried in KOfferReject's detail word — why an offered
// snapshot, chunk, or block range was refused.
type Reject uint8

const (
	RejectNoQuorum     Reject = iota + 1 // offers never reached f+1 agreement
	RejectTruncated                      // chunk shorter than its declared size
	RejectDigest                         // reassembled bytes hash to the wrong digest
	RejectWrongHeight                    // range outside the requested window
	RejectChainBreak                     // parent link broken inside a range
	RejectProof                          // commit proof failed verification
	RejectHeadMismatch                   // range head does not meet the certified head
	RejectOvercount                      // more blocks than requested
)

var rejectNames = map[Reject]string{
	RejectNoQuorum:     "no_quorum",
	RejectTruncated:    "truncated_chunk",
	RejectDigest:       "digest_mismatch",
	RejectWrongHeight:  "wrong_height",
	RejectChainBreak:   "chain_break",
	RejectProof:        "proof_mismatch",
	RejectHeadMismatch: "head_mismatch",
	RejectOvercount:    "overcount",
}

func (r Reject) String() string {
	if n, ok := rejectNames[r]; ok {
		return n
	}
	return fmt.Sprintf("reject(%d)", uint8(r))
}

// Event is one fixed-shape flight record. All fields pack into five 64-bit
// words on the wire and in the ring; there is deliberately no free-form
// payload — a detail code beats a string the hot path would have to format.
type Event struct {
	Mono     int64  // ns since the recorder's epoch (monotonic)
	Seq      uint64 // round / height / sequence, kind-dependent
	View     uint64 // consensus view, where meaningful
	Detail   uint64 // kind-dependent code (peer id, latency ns, Phase, Reject)
	Instance uint32 // BCA instance, where meaningful
	Replica  uint16 // emitting replica
	Sub      Sub
	Kind     Kind
}

// pack/unpack: word 4 carries instance<<32 | replica<<16 | sub<<8 | kind.
func (e Event) word4() uint64 {
	return uint64(e.Instance)<<32 | uint64(e.Replica)<<16 | uint64(e.Sub)<<8 | uint64(e.Kind)
}

func unpack4(w uint64) (instance uint32, replica uint16, sub Sub, kind Kind) {
	return uint32(w >> 32), uint16(w >> 16), Sub(w >> 8), Kind(w)
}

// slot is one ring entry. The stamp is 0 while a writer is mid-update and
// ticket+1 once the words are consistent; a reader accepts a slot only when
// the stamp reads as the expected ticket both before and after the words.
type slot struct {
	stamp atomic.Uint64
	w     [5]atomic.Uint64
}

// Recorder is the lock-free bounded event ring. One Recorder may be shared
// by every replica of an in-process cluster: events carry their emitting
// replica explicitly, so a shared ring still merges correctly.
type Recorder struct {
	epoch time.Time // creation instant; time.Since(epoch) is monotonic
	mask  uint64
	head  atomic.Uint64 // total events ever recorded; next ticket
	slots []slot
}

// DefaultSize is the ring capacity when New is given a non-positive size.
const DefaultSize = 4096

// New returns a recorder holding size events (rounded up to a power of
// two, minimum 16).
func New(size int) *Recorder {
	if size <= 0 {
		size = DefaultSize
	}
	n := uint64(16)
	for n < uint64(size) {
		n <<= 1
	}
	return &Recorder{epoch: time.Now(), mask: n - 1, slots: make([]slot, n)}
}

// Record appends one event. Safe from any goroutine, never blocks, never
// allocates; a nil receiver records nothing.
func (r *Recorder) Record(replica uint16, sub Sub, kind Kind, instance uint32, view, seq, detail uint64) {
	if r == nil {
		return
	}
	mono := time.Since(r.epoch)
	ticket := r.head.Add(1) - 1
	s := &r.slots[ticket&r.mask]
	s.stamp.Store(0)
	s.w[0].Store(uint64(mono))
	s.w[1].Store(seq)
	s.w[2].Store(view)
	s.w[3].Store(detail)
	s.w[4].Store(Event{Instance: instance, Replica: replica, Sub: sub, Kind: kind}.word4())
	s.stamp.Store(ticket + 1)
}

// Head returns the total number of events ever recorded — the cursor a
// caller passes back as `since` to read only what is new.
func (r *Recorder) Head() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Snapshot is one consistent read of a recorder: the events, the cursor
// for the next read, and the hybrid-clock anchor that lets a merger
// resolve each event's wall time.
type Snapshot struct {
	Replica    uint16  // hint for single-replica dumps; events carry their own
	FirstSeq   uint64  // ring index of Events[0]
	Next       uint64  // pass as `since` to the next Dump for only-new events
	AnchorWall int64   // unix ns of the wall clock at capture
	AnchorMono int64   // recorder mono ns at the same instant
	Events     []Event // oldest first; overwritten-mid-read slots omitted
}

// WallTime resolves an event's wall-clock time against the snapshot's
// anchor. Correct across wall-clock steps after process start: the anchor
// pair is captured fresh at every dump.
func (s *Snapshot) WallTime(e Event) time.Time {
	return time.Unix(0, s.AnchorWall-(s.AnchorMono-e.Mono))
}

// Dump reads every event with index >= since that is still in the ring.
// Events overwritten between their stamp checks are dropped, never torn.
// Dump(0) reads the whole ring; Dump(prev.Next) reads only what arrived
// after the previous dump.
func (r *Recorder) Dump(since uint64) Snapshot {
	snap := Snapshot{AnchorWall: time.Now().UnixNano()}
	if r == nil {
		return snap
	}
	snap.AnchorMono = int64(time.Since(r.epoch))
	head := r.head.Load()
	snap.Next = head
	size := r.mask + 1
	lo := since
	if head > size && lo < head-size {
		lo = head - size
	}
	if lo >= head {
		snap.FirstSeq = head
		return snap
	}
	snap.FirstSeq = lo
	snap.Events = make([]Event, 0, head-lo)
	for i := lo; i < head; i++ {
		s := &r.slots[i&r.mask]
		if s.stamp.Load() != i+1 {
			continue // mid-write or already overwritten
		}
		var w [5]uint64
		for j := range w {
			w[j] = s.w[j].Load()
		}
		if s.stamp.Load() != i+1 {
			continue // overwritten while reading
		}
		instance, replica, sub, kind := unpack4(w[4])
		snap.Events = append(snap.Events, Event{
			Mono: int64(w[0]), Seq: w[1], View: w[2], Detail: w[3],
			Instance: instance, Replica: replica, Sub: sub, Kind: kind,
		})
	}
	return snap
}

// Binary snapshot format (all little-endian):
//
//	magic    [8]byte  "RCCFLTB1"
//	replica  uint16
//	recsize  uint16   bytes per record (40)
//	_        uint32   reserved
//	wall     int64    AnchorWall
//	mono     int64    AnchorMono
//	firstSeq uint64
//	next     uint64
//	count    uint32
//	_        uint32   reserved
//	records  count × recsize bytes: mono i64, seq u64, view u64, detail u64, word4 u64
//
// The same bytes serve /debug/events?format=bin and <data-dir>/flight.bin.
// Decode tolerates a truncated record tail (a crash mid-write loses at most
// the partial record), but not a damaged header.
const (
	binMagic   = "RCCFLTB1"
	recordSize = 40
	headerSize = 8 + 2 + 2 + 4 + 8 + 8 + 8 + 8 + 4 + 4
)

// EncodeBinary writes the snapshot in the flight binary format.
func EncodeBinary(w io.Writer, snap Snapshot) error {
	buf := make([]byte, headerSize+len(snap.Events)*recordSize)
	copy(buf, binMagic)
	binary.LittleEndian.PutUint16(buf[8:], snap.Replica)
	binary.LittleEndian.PutUint16(buf[10:], recordSize)
	binary.LittleEndian.PutUint64(buf[16:], uint64(snap.AnchorWall))
	binary.LittleEndian.PutUint64(buf[24:], uint64(snap.AnchorMono))
	binary.LittleEndian.PutUint64(buf[32:], snap.FirstSeq)
	binary.LittleEndian.PutUint64(buf[40:], snap.Next)
	binary.LittleEndian.PutUint32(buf[48:], uint32(len(snap.Events)))
	off := headerSize
	for _, e := range snap.Events {
		binary.LittleEndian.PutUint64(buf[off:], uint64(e.Mono))
		binary.LittleEndian.PutUint64(buf[off+8:], e.Seq)
		binary.LittleEndian.PutUint64(buf[off+16:], e.View)
		binary.LittleEndian.PutUint64(buf[off+24:], e.Detail)
		binary.LittleEndian.PutUint64(buf[off+32:], e.word4())
		off += recordSize
	}
	_, err := w.Write(buf)
	return err
}

// ErrBadMagic reports a reader handed something that is not a flight dump.
var ErrBadMagic = errors.New("flight: bad magic (not a flight dump)")

// DecodeBinary parses a flight binary dump. A truncated record tail is
// tolerated: every complete record before the cut is returned.
func DecodeBinary(r io.Reader) (Snapshot, error) {
	var snap Snapshot
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return snap, fmt.Errorf("flight: short header: %w", err)
	}
	if string(hdr[:8]) != binMagic {
		return snap, ErrBadMagic
	}
	snap.Replica = binary.LittleEndian.Uint16(hdr[8:])
	rec := int(binary.LittleEndian.Uint16(hdr[10:]))
	if rec < recordSize {
		return snap, fmt.Errorf("flight: record size %d too small", rec)
	}
	snap.AnchorWall = int64(binary.LittleEndian.Uint64(hdr[16:]))
	snap.AnchorMono = int64(binary.LittleEndian.Uint64(hdr[24:]))
	snap.FirstSeq = binary.LittleEndian.Uint64(hdr[32:])
	snap.Next = binary.LittleEndian.Uint64(hdr[40:])
	count := int(binary.LittleEndian.Uint32(hdr[48:]))
	snap.Events = make([]Event, 0, count)
	buf := make([]byte, rec)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			break // truncated tail: keep what we have
		}
		instance, replica, sub, kind := unpack4(binary.LittleEndian.Uint64(buf[32:]))
		snap.Events = append(snap.Events, Event{
			Mono:     int64(binary.LittleEndian.Uint64(buf[0:])),
			Seq:      binary.LittleEndian.Uint64(buf[8:]),
			View:     binary.LittleEndian.Uint64(buf[16:]),
			Detail:   binary.LittleEndian.Uint64(buf[24:]),
			Instance: instance, Replica: replica, Sub: sub, Kind: kind,
		})
	}
	return snap, nil
}

// FileName is the on-disk dump name under a replica's data dir.
const FileName = "flight.bin"

// WriteFile dumps the full ring to path atomically (tmp + rename), so a
// kill -9 during the write leaves the previous complete dump, and a kill
// between mirrors leaves a recent prefix of the ring on disk.
func (r *Recorder) WriteFile(path string, replica uint16) error {
	snap := r.Dump(0)
	snap.Replica = replica
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := EncodeBinary(f, snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a dump written by WriteFile.
func ReadFile(path string) (Snapshot, error) {
	f, err := os.Open(filepath.Clean(path))
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return DecodeBinary(f)
}

// DetailString renders an event's detail word per its kind.
func DetailString(e Event) string {
	switch e.Kind {
	case KConnect, KReconnect, KDemote, KAuthFail, KOverflowDrop:
		return fmt.Sprintf("peer=%d", e.Detail)
	case KFsyncStall, KLoopStall:
		return fmt.Sprintf("stall=%s", time.Duration(e.Detail))
	case KSyncPhase:
		return "phase=" + Phase(e.Detail).String()
	case KOfferReject:
		return "reason=" + Reject(e.Detail).String()
	default:
		if e.Detail == 0 {
			return ""
		}
		return fmt.Sprintf("detail=%d", e.Detail)
	}
}

// WriteText renders a snapshot one event per line, oldest first, with
// resolved wall times. The trailing "next=<cursor>" line is the value to
// pass as ?since= on the next poll.
func WriteText(w io.Writer, snap Snapshot) {
	fmt.Fprintf(w, "flight: %d events, ring cursor [%d, %d)\n", len(snap.Events), snap.FirstSeq, snap.Next)
	for _, e := range snap.Events {
		wall := snap.WallTime(e)
		fmt.Fprintf(w, "%s r%d %-9s %-17s inst=%d view=%d seq=%d",
			wall.Format("15:04:05.000000"), e.Replica, e.Sub, e.Kind, e.Instance, e.View, e.Seq)
		if d := DetailString(e); d != "" {
			fmt.Fprintf(w, " %s", d)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "next=%d\n", snap.Next)
}
