package flight

// The merge layer turns per-replica flight snapshots into one cluster-wide
// causal timeline. Each snapshot's hybrid anchor resolves its events to
// wall time independently, so replicas whose wall clocks stepped after
// start still interleave correctly; the merged sequence is then scanned
// for the anomaly shapes that matter when diagnosing a stuck cluster:
// view-change storms, repeated link demotions, unification waves that
// stopped advancing, and the always-notable singles (loop stalls, fsync
// stalls, durability poison).

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// TimelineEvent is one event on the merged cluster timeline, with its
// wall time already resolved against its source snapshot's anchor.
type TimelineEvent struct {
	Wall time.Time
	Event
}

// Merge resolves every snapshot's events to wall time and merge-sorts them
// into one timeline. Ties sort by replica then kind, so identical-stamp
// events order deterministically.
func Merge(snaps []Snapshot) []TimelineEvent {
	var total int
	for i := range snaps {
		total += len(snaps[i].Events)
	}
	tl := make([]TimelineEvent, 0, total)
	for i := range snaps {
		for _, e := range snaps[i].Events {
			tl = append(tl, TimelineEvent{Wall: snaps[i].WallTime(e), Event: e})
		}
	}
	sort.SliceStable(tl, func(a, b int) bool {
		if !tl[a].Wall.Equal(tl[b].Wall) {
			return tl[a].Wall.Before(tl[b].Wall)
		}
		if tl[a].Replica != tl[b].Replica {
			return tl[a].Replica < tl[b].Replica
		}
		return tl[a].Kind < tl[b].Kind
	})
	return tl
}

// Anomaly is one highlighted pattern on a merged timeline.
type Anomaly struct {
	At     time.Time
	Title  string // short machine-greppable slug
	Detail string // human-readable explanation
}

const (
	// stormWindow / stormCount: >= stormCount view-change starts on one
	// instance inside stormWindow is a storm — the instance is churning
	// views instead of deciding.
	stormWindow = 10 * time.Second
	stormCount  = 3
	// demoteCount repeated demotions of the same (replica, peer) link
	// inside stormWindow: the link is flapping, not recovering.
	demoteCount = 2
	// waveStallGap: instance decisions piling up for this long with no
	// unification delivery anywhere means the wave is stuck — some
	// instance everyone is waiting on has stopped.
	waveStallGap = 2 * time.Second
)

// DetectAnomalies scans a merged timeline for the patterns worth a human's
// attention. Heuristics are deliberately coarse: the recorder is a
// diagnosis aid, and a false highlight costs a glance while a missed one
// costs the incident.
func DetectAnomalies(tl []TimelineEvent) []Anomaly {
	var out []Anomaly

	// Sliding per-key windows for storm-type patterns.
	vcTimes := map[uint64][]time.Time{}  // instance<<16|replica is too fine: key by instance
	demTimes := map[uint64][]time.Time{} // replica<<32|peer
	slide := func(ts []time.Time, now time.Time) []time.Time {
		for len(ts) > 0 && now.Sub(ts[0]) > stormWindow {
			ts = ts[1:]
		}
		return ts
	}

	var lastUnify, firstStuckDecide time.Time
	stuckDecides := 0
	waveReported := false

	for _, ev := range tl {
		switch ev.Kind {
		case KViewChangeStart:
			k := uint64(ev.Instance)
			ts := append(slide(vcTimes[k], ev.Wall), ev.Wall)
			vcTimes[k] = ts
			if len(ts) == stormCount {
				out = append(out, Anomaly{ev.Wall, "view-change-storm",
					fmt.Sprintf("instance %d: %d view changes within %s (replica %d reached view %d)",
						ev.Instance, len(ts), stormWindow, ev.Replica, ev.View)})
			}
		case KDemote:
			k := uint64(ev.Replica)<<32 | ev.Detail
			ts := append(slide(demTimes[k], ev.Wall), ev.Wall)
			demTimes[k] = ts
			if len(ts) == demoteCount {
				out = append(out, Anomaly{ev.Wall, "repeated-demotion",
					fmt.Sprintf("replica %d demoted link to peer %d %d times within %s",
						ev.Replica, ev.Detail, len(ts), stormWindow)})
			}
		case KInstanceDecide:
			if stuckDecides == 0 {
				firstStuckDecide = ev.Wall
			}
			stuckDecides++
			if !waveReported && stuckDecides > 1 &&
				(lastUnify.IsZero() || lastUnify.Before(firstStuckDecide)) &&
				ev.Wall.Sub(firstStuckDecide) > waveStallGap {
				out = append(out, Anomaly{ev.Wall, "stalled-wave",
					fmt.Sprintf("%d instance decisions over %s with no unified delivery — a wave is waiting on a stopped instance",
						stuckDecides, ev.Wall.Sub(firstStuckDecide).Round(time.Millisecond))})
				waveReported = true
			}
		case KWaveUnify:
			lastUnify = ev.Wall
			stuckDecides = 0
			waveReported = false
		case KLoopStall:
			out = append(out, Anomaly{ev.Wall, "loop-stall",
				fmt.Sprintf("replica %d consensus loop stalled for %s", ev.Replica, time.Duration(ev.Detail))})
		case KFsyncStall:
			out = append(out, Anomaly{ev.Wall, "fsync-stall",
				fmt.Sprintf("replica %d fsync took %s", ev.Replica, time.Duration(ev.Detail))})
		case KDurabilityPoison:
			out = append(out, Anomaly{ev.Wall, "durability-poison",
				fmt.Sprintf("replica %d journal poisoned — replica must be replaced", ev.Replica)})
		}
	}
	return out
}

// WriteTimeline renders the merged timeline with anomalies inlined where
// they were detected and summarized at the end.
func WriteTimeline(w io.Writer, tl []TimelineEvent, anoms []Anomaly) {
	fmt.Fprintf(w, "timeline: %d events, %d anomalies\n", len(tl), len(anoms))
	ai := 0
	for _, ev := range tl {
		for ai < len(anoms) && !anoms[ai].At.After(ev.Wall) {
			fmt.Fprintf(w, "!! %s %s: %s\n", anoms[ai].At.Format("15:04:05.000000"), anoms[ai].Title, anoms[ai].Detail)
			ai++
		}
		fmt.Fprintf(w, "%s r%d %-9s %-17s inst=%d view=%d seq=%d",
			ev.Wall.Format("15:04:05.000000"), ev.Replica, ev.Sub, ev.Kind, ev.Instance, ev.View, ev.Seq)
		if d := DetailString(ev.Event); d != "" {
			fmt.Fprintf(w, " %s", d)
		}
		fmt.Fprintln(w)
	}
	for ; ai < len(anoms); ai++ {
		fmt.Fprintf(w, "!! %s %s: %s\n", anoms[ai].At.Format("15:04:05.000000"), anoms[ai].Title, anoms[ai].Detail)
	}
	if len(anoms) > 0 {
		fmt.Fprintf(w, "anomalies: %d\n", len(anoms))
		for _, a := range anoms {
			fmt.Fprintf(w, "  %s %s: %s\n", a.At.Format("15:04:05.000000"), a.Title, a.Detail)
		}
	}
}

// FetchHTTP scrapes one replica's full ring from its admin endpoint
// (GET http://addr/debug/events?format=bin).
func FetchHTTP(addr string) (Snapshot, error) {
	resp, err := http.Get("http://" + addr + "/debug/events?format=bin")
	if err != nil {
		return Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("flight: %s returned %s", addr, resp.Status)
	}
	return DecodeBinary(resp.Body)
}
