// Package obs is the node's observability layer: a dependency-free metrics
// registry (atomic counters, gauges, and log-bucketed latency histograms
// with p50/p95/p99/max snapshots), a sampled per-transaction lifecycle
// tracer, and an admin HTTP handler exposing everything as Prometheus text
// exposition format plus health probes and pprof.
//
// The hot path allocates nothing: instruments are plain atomics, every
// method is nil-receiver safe (a nil *Counter, *Gauge, *Histogram, *Tracer,
// or *NodeMetrics is a no-op sink), and rendering cost is paid only at
// scrape time. Subsystems that keep their own counters (transport, wal,
// statesync) register closures via CounterFunc/GaugeFunc and are polled at
// scrape.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil Counter is a
// valid no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value. A nil Gauge is a valid no-op sink.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writeFn renders one series. name is the family name, labels the series'
// constant label pairs (`k="v",k2="v2"`, possibly empty).
type writeFn func(w io.Writer, name, labels string)

type series struct {
	labels string
	write  writeFn
}

// family groups every series sharing a metric name; HELP and TYPE are
// emitted once per family, as the exposition format requires.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []series
}

// Registry holds instruments in registration order and renders them as
// Prometheus text exposition format. All methods are safe for concurrent
// use; instrument updates never take the registry lock.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	index map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*family{}}
}

// add registers one series under name. Registering the same name with a
// different kind, or the same name+labels twice, is a programming error and
// panics.
func (r *Registry) add(name, labels, help string, kind metricKind, w writeFn) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.index[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic("obs: metric " + name + " re-registered as " + kind.String() + ", was " + f.kind.String())
	}
	for _, s := range f.series {
		if s.labels == labels {
			panic("obs: duplicate series " + name + "{" + labels + "}")
		}
	}
	f.series = append(f.series, series{labels: labels, write: w})
}

// Counter registers and returns a counter. labels is either empty or a
// rendered constant label list like `stage="consensus"`.
func (r *Registry) Counter(name, labels, help string) *Counter {
	c := &Counter{}
	r.add(name, labels, help, kindCounter, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.Value())
	})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	g := &Gauge{}
	r.add(name, labels, help, kindGauge, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), g.Value())
	})
	return g
}

// CounterFunc registers a counter whose value is polled at scrape time —
// the bridge for subsystems that already keep their own atomic counters.
func (r *Registry) CounterFunc(name, labels, help string, f func() float64) {
	r.add(name, labels, help, kindCounter, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(f()))
	})
}

// GaugeFunc registers a gauge polled at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, f func() float64) {
	r.add(name, labels, help, kindGauge, func(w io.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %s\n", name, braced(labels), formatFloat(f()))
	})
}

// Histogram registers and returns a log-bucketed latency histogram.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	h := &Histogram{}
	r.add(name, labels, help, kindHistogram, h.writeProm)
	return h
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			s.write(bw, f.name, s.labels)
		}
	}
	return bw.Flush()
}

// braced wraps a rendered label list for a sample line; empty labels render
// as nothing.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatFloat renders a sample value: integral values without an exponent,
// everything else in Go's shortest representation (both accepted by the
// exposition format).
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
