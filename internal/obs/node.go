package obs

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"

	"repro/internal/obs/flight"
)

// Stage is one segment of a transaction's server-side lifecycle. The
// stages tile the path a request takes through the replica, so their sums
// account for end-to-end latency:
//
//	consensus + unify + ack ≈ client-observed server latency
//
// where ack itself contains execute and (in async-journal mode) the
// journal submit→durable wait.
type Stage uint8

const (
	// StageVerify: inbound frame staged for authentication → every record
	// verified by the transport's verify pool (transport). Only populated
	// with authentication enabled and pooled verification active; spans
	// pool queueing plus the MAC/signature checks themselves.
	StageVerify Stage = iota
	// StageConsensus: proposal first seen (pre-prepare) → round decided
	// and delivered by its BCA instance (pbft).
	StageConsensus
	// StageUnify: instance decision received → delivered in the unified
	// cross-instance execution order (rcc).
	StageUnify
	// StageExecute: batch applied to the application state machine (exec).
	StageExecute
	// StageJournal: journal record submitted → reported durable (wal).
	StageJournal
	// StageAck: unified delivery → client replies enqueued (runtime);
	// in async-journal mode this spans execution and the durability wait.
	StageAck

	numStages
)

var stageNames = [numStages]string{"verify", "consensus", "unify", "execute", "journal", "ack"}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage?"
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// NodeMetrics is the replica's instrument catalog: per-stage latency
// histograms, consensus/runtime counters, and the lifecycle tracer. One
// NodeMetrics is shared by every layer of a replica (pbft, rcc, exec, wal,
// runtime), all feeding one Registry.
//
// A nil *NodeMetrics — and equally a zero NodeMetrics, whose instrument
// fields are all nil — is the no-op sink: every method and every instrument
// call is safe and free-ish, so instrumented code needs no conditional
// plumbing.
type NodeMetrics struct {
	// Tracer samples transaction lifecycles; nil disables tracing.
	Tracer *Tracer

	// Flight is the black-box protocol-event recorder; nil disables it.
	// Every subsystem holding this catalog emits into the same ring —
	// events carry their replica id, so one ring serves an in-process
	// cluster as well as a single node.
	Flight *flight.Recorder

	// Requests counts client requests admitted by consensus instances
	// (post-dedup).
	Requests *Counter
	// Decided counts rounds decided by individual BCA instances.
	Decided *Counter
	// Unified counts rounds delivered in the unified execution order.
	Unified *Counter
	// NoOps counts no-op rounds proposed to fill lagging instances.
	NoOps *Counter
	// Suspects counts instance-failure suspicions raised.
	Suspects *Counter
	// ViewChanges counts new views installed.
	ViewChanges *Counter
	// Acks counts client reply messages enqueued.
	Acks *Counter
	// WALFsync observes async-appender commit-point (fsync) latency.
	WALFsync *Histogram

	reg    *Registry
	stages [numStages]*Histogram
}

// NewNodeMetrics builds the catalog, registering every instrument in reg.
// traceSize and traceSample parameterize the lifecycle tracer (zero values
// pick defaults); traceSample < 0 disables tracing entirely.
func NewNodeMetrics(reg *Registry, traceSize, traceSample int) *NodeMetrics {
	m := &NodeMetrics{reg: reg}
	if traceSample >= 0 {
		m.Tracer = NewTracer(traceSize, traceSample)
	}
	const stageHelp = "per-stage transaction latency: verify (frame staged to authenticated), consensus (proposal seen to decided), unify (decided to unified order), execute (state machine apply), journal (submit to durable), ack (delivered to replies enqueued)"
	for s := Stage(0); s < numStages; s++ {
		m.stages[s] = reg.Histogram("rcc_stage_latency_seconds", `stage="`+s.String()+`"`, stageHelp)
	}
	m.Requests = reg.Counter("rcc_requests_total", "", "client requests admitted by consensus instances")
	m.Decided = reg.Counter("rcc_rounds_decided_total", "", "rounds decided by individual consensus instances")
	m.Unified = reg.Counter("rcc_rounds_unified_total", "", "rounds delivered in the unified execution order")
	m.NoOps = reg.Counter("rcc_noops_proposed_total", "", "no-op rounds proposed to fill lagging instances")
	m.Suspects = reg.Counter("rcc_suspects_total", "", "instance-failure suspicions raised")
	m.ViewChanges = reg.Counter("rcc_view_changes_total", "", "new views installed")
	m.Acks = reg.Counter("rcc_acks_sent_total", "", "client reply messages enqueued")
	m.WALFsync = reg.Histogram("wal_fsync_seconds", "", "async appender commit-point (fsync) latency")
	m.Flight = flight.New(0)
	registerRuntimeMetrics(reg)
	return m
}

// registerRuntimeMetrics exports Go process self-metrics so /metrics covers
// the process, not just the protocol: goroutine count, heap in use, GC
// pause p99, GOMAXPROCS, and a build-info marker. The runtime/metrics reads
// are cached and refreshed at most once per second, so scrape storms cannot
// turn gauge polls into runtime pressure.
func registerRuntimeMetrics(reg *Registry) {
	s := &runtimeSampler{}
	reg.GaugeFunc("go_goroutines", "", "goroutines currently live", func() float64 {
		return s.get(&s.goroutines)
	})
	reg.GaugeFunc("go_heap_inuse_bytes", "", "bytes of heap memory occupied by live objects", func() float64 {
		return s.get(&s.heapInuse)
	})
	reg.GaugeFunc("go_gc_pause_p99_seconds", "", "99th percentile stop-the-world GC pause since process start", func() float64 {
		return s.get(&s.gcPauseP99)
	})
	reg.GaugeFunc("go_gomaxprocs", "", "GOMAXPROCS at scrape time", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	reg.GaugeFunc("rcc_build_info", fmt.Sprintf(`goversion=%q`, runtime.Version()),
		"constant 1, labeled with the Go toolchain that built this binary", func() float64 { return 1 })
}

// runtimeSampler caches one runtime/metrics read for all the gauges above.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample

	goroutines float64
	heapInuse  float64
	gcPauseP99 float64
}

func (s *runtimeSampler) get(field *float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.last) >= time.Second {
		s.refresh()
		s.last = now
	}
	return *field
}

func (s *runtimeSampler) refresh() {
	if s.samples == nil {
		s.samples = []metrics.Sample{
			{Name: "/sched/goroutines:goroutines"},
			{Name: "/memory/classes/heap/objects:bytes"},
			{Name: "/sched/pauses/total/gc:seconds"},
		}
	}
	metrics.Read(s.samples)
	for i := range s.samples {
		v := &s.samples[i]
		switch {
		case v.Value.Kind() == metrics.KindUint64 && v.Name == "/sched/goroutines:goroutines":
			s.goroutines = float64(v.Value.Uint64())
		case v.Value.Kind() == metrics.KindUint64 && v.Name == "/memory/classes/heap/objects:bytes":
			s.heapInuse = float64(v.Value.Uint64())
		case v.Value.Kind() == metrics.KindFloat64Histogram && v.Name == "/sched/pauses/total/gc:seconds":
			s.gcPauseP99 = histP99(v.Value.Float64Histogram())
		}
	}
}

// histP99 extracts the 99th percentile from a runtime/metrics histogram,
// reported as the upper bound of the bucket the percentile falls in.
func histP99(h *metrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var cum uint64
	bound := func(i int) float64 {
		// Report the bucket's upper bound; for the +Inf overflow bucket
		// fall back to its lower bound so the gauge stays finite.
		if i+1 < len(h.Buckets) && !isInf(h.Buckets[i+1]) {
			return h.Buckets[i+1]
		}
		if i < len(h.Buckets) && !isInf(h.Buckets[i]) {
			return h.Buckets[i]
		}
		return 0
	}
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return bound(i)
		}
	}
	return bound(len(h.Counts) - 1)
}

func isInf(f float64) bool { return f > 1e300 || f < -1e300 }

// Registry returns the registry backing the catalog, nil for the no-op
// sink.
func (m *NodeMetrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Stage returns the histogram for s (nil on the no-op sink).
func (m *NodeMetrics) Stage(s Stage) *Histogram {
	if m == nil {
		return nil
	}
	return m.stages[s]
}

// Tracing reports whether lifecycle tracing is live — instrumented code
// uses it to skip per-transaction loops entirely when no tracer is
// attached.
func (m *NodeMetrics) Tracing() bool {
	return m != nil && m.Tracer != nil
}

// Trace stamps point for the transaction if it is sampled.
func (m *NodeMetrics) Trace(client, seq uint64, p TracePoint) {
	if m == nil {
		return
	}
	m.Tracer.Record(client, seq, p)
}

// Emit records a flight event; a nil catalog or nil recorder is a no-op,
// so protocol code emits unconditionally.
func (m *NodeMetrics) Emit(replica uint16, sub flight.Sub, kind flight.Kind, instance uint32, view, seq, detail uint64) {
	if m == nil {
		return
	}
	m.Flight.Record(replica, sub, kind, instance, view, seq, detail)
}

// ObserveStage is shorthand for Stage(s).Observe(d).
func (m *NodeMetrics) ObserveStage(s Stage, d time.Duration) {
	if m == nil {
		return
	}
	m.stages[s].Observe(d)
}
